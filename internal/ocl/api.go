package ocl

// Client is the entry point of an OpenCL runtime. Both the native runtime
// (exclusive board access, the paper's baseline) and the BlastFunction
// Remote OpenCL Library implement it, so host code is written once and runs
// against either — the transparency property the paper claims.
type Client interface {
	// Platforms enumerates the available OpenCL platforms, as in
	// clGetPlatformIDs.
	Platforms() ([]Platform, error)
	// CreateContext creates an execution context spanning the given
	// devices, which must all belong to the same platform.
	CreateContext(devices []Device) (Context, error)
	// Close releases every resource the client still holds, including
	// remote sessions for the remote implementation.
	Close() error
}

// Platform describes an OpenCL platform (vendor runtime).
type Platform interface {
	// Name returns the platform name, e.g. "Intel(R) FPGA SDK for OpenCL(TM)".
	Name() string
	// Vendor returns the platform vendor string.
	Vendor() string
	// Version returns the platform OpenCL version string.
	Version() string
	// Devices enumerates devices of the given type, as in clGetDeviceIDs.
	Devices(typ DeviceType) ([]Device, error)
}

// Device describes a single accelerator board.
type Device interface {
	// Name returns the board name, e.g. "de5a_net : Arria 10 GX".
	Name() string
	// Vendor returns the device vendor string.
	Vendor() string
	// Type returns the device class; FPGAs report DeviceTypeAccelerator.
	Type() DeviceType
	// GlobalMemSize returns the on-board DDR capacity in bytes.
	GlobalMemSize() int64
	// Available reports whether the device can accept new contexts.
	Available() bool
}

// Context owns devices, buffers, programs and queues, as in clCreateContext.
type Context interface {
	// Devices returns the devices the context spans.
	Devices() []Device
	// CreateCommandQueue creates an in-order command queue on the device,
	// as in clCreateCommandQueue.
	CreateCommandQueue(d Device, props QueueProps) (CommandQueue, error)
	// CreateBuffer allocates a device buffer of size bytes, as in
	// clCreateBuffer. If hostData is non-nil the buffer is initialized by
	// copying it (CL_MEM_COPY_HOST_PTR semantics).
	CreateBuffer(flags MemFlags, size int, hostData []byte) (Buffer, error)
	// CreateProgramWithBinary loads a pre-synthesized bitstream, as in
	// clCreateProgramWithBinary. FPGA flows never compile from source
	// online; the binary is the .aocx produced offline.
	CreateProgramWithBinary(d Device, binary []byte) (Program, error)
	// Release destroys the context and everything created from it.
	Release() error
}

// Buffer is a device memory object, as created by clCreateBuffer.
type Buffer interface {
	// Size returns the allocation size in bytes.
	Size() int
	// Flags returns the allocation flags.
	Flags() MemFlags
	// Release frees the device allocation.
	Release() error
}

// Program is a loaded bitstream, as created by clCreateProgramWithBinary.
type Program interface {
	// Build finalizes the program for the context devices, as in
	// clBuildProgram. For FPGA binaries this triggers (or schedules) board
	// reconfiguration if the currently configured bitstream differs.
	Build(options string) error
	// CreateKernel instantiates a kernel by name, as in clCreateKernel.
	CreateKernel(name string) (Kernel, error)
	// KernelNames lists the kernels contained in the bitstream.
	KernelNames() []string
	// Release drops the host handle; the board keeps the configuration.
	Release() error
}

// Kernel is a kernel instance with argument bindings, as in clCreateKernel.
type Kernel interface {
	// Name returns the kernel's name inside its program.
	Name() string
	// SetArg binds argument index i, as in clSetKernelArg. Accepted values:
	// Buffer (device memory argument), or one of int32, uint32, int64,
	// uint64, float32, float64 (by-value scalar argument).
	SetArg(i int, value any) error
	// Release drops the kernel handle.
	Release() error
}

// CommandQueue issues work to a device in order, as in clCreateCommandQueue
// with in-order semantics. Enqueue methods return immediately with an Event
// unless blocking is requested; Flush/Finish provide the clFlush/clFinish
// semantics that also close the current BlastFunction task.
type CommandQueue interface {
	// EnqueueWriteBuffer copies host data into a device buffer, as in
	// clEnqueueWriteBuffer. When blocking is true the call returns only
	// after the transfer completed.
	EnqueueWriteBuffer(b Buffer, blocking bool, offset int, data []byte, waitList []Event) (Event, error)
	// EnqueueReadBuffer copies device data into host memory, as in
	// clEnqueueReadBuffer. dst must be sized to the transfer length.
	EnqueueReadBuffer(b Buffer, blocking bool, offset int, dst []byte, waitList []Event) (Event, error)
	// EnqueueCopyBuffer copies n bytes between two device buffers, as in
	// clEnqueueCopyBuffer. The bytes move on the device and never reach
	// the host — chaining one task's output into the next task's input
	// this way is what keeps multi-stage pipelines zero-copy under the
	// remote runtime.
	EnqueueCopyBuffer(src, dst Buffer, srcOffset, dstOffset, n int, waitList []Event) (Event, error)
	// EnqueueNDRangeKernel launches a kernel over the global range, as in
	// clEnqueueNDRangeKernel. local may be nil to let the runtime choose.
	EnqueueNDRangeKernel(k Kernel, global, local []int, waitList []Event) (Event, error)
	// EnqueueTask launches a single work-item kernel, as in clEnqueueTask.
	// This is the common launch style for Intel FPGA pipeline kernels.
	EnqueueTask(k Kernel, waitList []Event) (Event, error)
	// EnqueueMarker inserts a marker event that completes when all prior
	// commands in the queue completed, as in clEnqueueMarker.
	EnqueueMarker() (Event, error)
	// EnqueueBarrier enforces that later commands start only after all
	// earlier ones finished, as in clEnqueueBarrier. In BlastFunction this
	// also flushes the current task to the Device Manager.
	EnqueueBarrier() error
	// Flush submits all queued commands for execution, as in clFlush. In
	// BlastFunction this seals the current multi-operation task and sends
	// it to the Device Manager's central queue.
	Flush() error
	// Finish flushes and then blocks until every submitted command
	// completed, as in clFinish.
	Finish() error
	// Release destroys the queue after finishing outstanding work.
	Release() error
}

// Event tracks an asynchronous command, as in OpenCL event objects.
type Event interface {
	// CommandType identifies the command the event belongs to.
	CommandType() CommandType
	// Status returns the current execution status without blocking, as in
	// clGetEventInfo(CL_EVENT_COMMAND_EXECUTION_STATUS).
	Status() ExecStatus
	// Wait blocks until the event is terminal and returns its error, if
	// any. Wait on an already-terminal event returns immediately.
	Wait() error
	// Err returns the terminal error, or nil if the event completed
	// successfully or is still in flight.
	Err() error
}

// WaitForEvents blocks until every event terminates, as in clWaitForEvents.
// It returns ErrExecStatusErrorInWait (wrapped) if any event failed.
func WaitForEvents(events ...Event) error {
	var failed bool
	for _, e := range events {
		if e == nil {
			return Errf(ErrInvalidEventWaitList, "nil event in wait list")
		}
		if err := e.Wait(); err != nil {
			failed = true
		}
	}
	if failed {
		return Errf(ErrExecStatusErrorInWait, "one or more events in the wait list failed")
	}
	return nil
}
