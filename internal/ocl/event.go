package ocl

import (
	"sync"
	"sync/atomic"
	"time"
)

// BaseEvent is a reusable Event implementation shared by the native runtime
// and the Remote OpenCL Library. It holds the command type, the current
// execution status and an optional terminal error, and supports both
// polling (Status) and blocking (Wait) like the OpenCL specification
// requires for clGetEventInfo and clWaitForEvents.
//
// Status transitions must be monotonic (Queued -> Submitted -> Running ->
// Complete, or any state -> error); SetStatus enforces this so a late
// network response cannot move a completed event backwards.
type BaseEvent struct {
	mu      sync.Mutex
	done    chan struct{}
	cmdType CommandType
	status  ExecStatus
	err     error

	// callbacks registered via OnStatus, keyed by the status they fire at.
	callbacks []statusCallback

	// deviceNanos is the modelled device occupancy, for ProfilingEvent.
	deviceNanos atomic.Int64
}

type statusCallback struct {
	at ExecStatus
	fn func(ExecStatus, error)
}

// NewEvent creates an event in the Queued state.
func NewEvent(cmd CommandType) *BaseEvent {
	return &BaseEvent{
		done:    make(chan struct{}),
		cmdType: cmd,
		status:  Queued,
	}
}

// CommandType implements Event.
func (e *BaseEvent) CommandType() CommandType { return e.cmdType }

// Status implements Event.
func (e *BaseEvent) Status() ExecStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.status
}

// Err implements Event.
func (e *BaseEvent) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Wait implements Event.
func (e *BaseEvent) Wait() error {
	<-e.done
	return e.Err()
}

// Done exposes the completion channel for select-based waiting.
func (e *BaseEvent) Done() <-chan struct{} { return e.done }

// SetStatus advances the event to the given status. Regressions (including
// repeating the current status) are ignored, preserving monotonicity.
// Reaching Complete closes the completion channel and fires callbacks.
func (e *BaseEvent) SetStatus(s ExecStatus) {
	e.transition(s, nil)
}

// Fail terminates the event with an error. The execution status becomes the
// negative status code as the OpenCL specification mandates for abnormally
// terminated commands.
func (e *BaseEvent) Fail(err error) {
	if err == nil {
		e.transition(Complete, nil)
		return
	}
	e.transition(ExecStatus(StatusOf(err)), err)
}

// Complete terminates the event successfully.
func (e *BaseEvent) Complete() { e.transition(Complete, nil) }

// OnStatus registers fn to run once the event reaches status at (or any
// terminal state). If the event already passed that status the callback
// fires immediately. Callbacks run without the event lock held.
func (e *BaseEvent) OnStatus(at ExecStatus, fn func(status ExecStatus, err error)) {
	e.mu.Lock()
	if e.status <= at {
		s, err := e.status, e.err
		e.mu.Unlock()
		fn(s, err)
		return
	}
	e.callbacks = append(e.callbacks, statusCallback{at: at, fn: fn})
	e.mu.Unlock()
}

func (e *BaseEvent) transition(s ExecStatus, err error) {
	e.mu.Lock()
	// Terminal states are sticky; otherwise only forward (decreasing)
	// transitions are applied.
	if e.status.Done() || (s >= e.status && !s.Failed()) {
		e.mu.Unlock()
		return
	}
	e.status = s
	if s.Failed() {
		e.err = err
		if e.err == nil {
			e.err = Status(s)
		}
	}
	var fire []statusCallback
	rest := e.callbacks[:0]
	for _, cb := range e.callbacks {
		if e.status <= cb.at || e.status.Failed() {
			fire = append(fire, cb)
		} else {
			rest = append(rest, cb)
		}
	}
	e.callbacks = rest
	terminal := e.status.Done()
	status, cbErr := e.status, e.err
	if terminal {
		close(e.done)
	}
	e.mu.Unlock()
	for _, cb := range fire {
		cb.fn(status, cbErr)
	}
}

// CompletedEvent returns an already-complete event of the given type. It is
// used for degenerate enqueues (zero-length transfers) and markers on empty
// queues.
func CompletedEvent(cmd CommandType) *BaseEvent {
	e := NewEvent(cmd)
	e.Complete()
	return e
}

// FailedEvent returns an already-failed event carrying err.
func FailedEvent(cmd CommandType, err error) *BaseEvent {
	e := NewEvent(cmd)
	e.Fail(err)
	return e
}

// ProfilingEvent is implemented by events that expose the modelled device
// time of their command — the reproduction's analog of
// clGetEventProfilingInfo(CL_PROFILING_COMMAND_START/END).
type ProfilingEvent interface {
	Event
	// DeviceTime returns the device occupancy of the command, or zero if
	// the command has not completed (or never touched the device).
	DeviceTime() time.Duration
}

// SetDeviceTime records the command's device occupancy; runtimes call it
// at completion.
func (e *BaseEvent) SetDeviceTime(d time.Duration) {
	e.deviceNanos.Store(int64(d))
}

// DeviceTime implements ProfilingEvent.
func (e *BaseEvent) DeviceTime() time.Duration {
	return time.Duration(e.deviceNanos.Load())
}
