package ocl

import (
	"errors"
	"fmt"
	"testing"
)

func TestStatusString(t *testing.T) {
	cases := []struct {
		s    Status
		want string
	}{
		{Success, "CL_SUCCESS"},
		{ErrDeviceNotFound, "CL_DEVICE_NOT_FOUND"},
		{ErrInvalidKernelArgs, "CL_INVALID_KERNEL_ARGS"},
		{ErrInvalidBufferSize, "CL_INVALID_BUFFER_SIZE"},
		{Status(-999), "CL_UNKNOWN_STATUS(-999)"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("Status(%d).String() = %q, want %q", int32(c.s), got, c.want)
		}
	}
}

func TestStatusAsError(t *testing.T) {
	var err error = ErrInvalidValue
	if err.Error() != "CL_INVALID_VALUE" {
		t.Fatalf("Error() = %q", err.Error())
	}
	if !errors.Is(err, ErrInvalidValue) {
		t.Fatal("errors.Is should match the same status")
	}
	if errors.Is(err, ErrInvalidDevice) {
		t.Fatal("errors.Is must not match a different status")
	}
}

func TestErrfWrapping(t *testing.T) {
	err := Errf(ErrInvalidArgIndex, "kernel %q has %d args", "mm", 3)
	if !errors.Is(err, ErrInvalidArgIndex) {
		t.Fatalf("wrapped error does not match its status: %v", err)
	}
	want := `CL_INVALID_ARG_INDEX: kernel "mm" has 3 args`
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestStatusOf(t *testing.T) {
	if got := StatusOf(nil); got != Success {
		t.Errorf("StatusOf(nil) = %v", got)
	}
	if got := StatusOf(ErrInvalidKernel); got != ErrInvalidKernel {
		t.Errorf("StatusOf(status) = %v", got)
	}
	if got := StatusOf(Errf(ErrInvalidEvent, "boom")); got != ErrInvalidEvent {
		t.Errorf("StatusOf(Errf) = %v", got)
	}
	wrapped := fmt.Errorf("context: %w", Errf(ErrOutOfResources, "queue full"))
	if got := StatusOf(wrapped); got != ErrOutOfResources {
		t.Errorf("StatusOf(wrapped Errf) = %v", got)
	}
	if got := StatusOf(errors.New("plain")); got != ErrInvalidValue {
		t.Errorf("StatusOf(foreign) = %v", got)
	}
}

func TestExecStatusProperties(t *testing.T) {
	if !Complete.Done() || Complete.Failed() {
		t.Error("Complete must be done and not failed")
	}
	for _, s := range []ExecStatus{Running, Submitted, Queued} {
		if s.Done() || s.Failed() {
			t.Errorf("%v must not be terminal", s)
		}
	}
	failed := ExecStatus(ErrOutOfResources)
	if !failed.Done() || !failed.Failed() {
		t.Error("negative statuses must be terminal failures")
	}
	if failed.String() != "ERROR(CL_OUT_OF_RESOURCES)" {
		t.Errorf("failed.String() = %q", failed.String())
	}
}

func TestMemFlagsValid(t *testing.T) {
	valid := []MemFlags{MemReadWrite, MemReadOnly, MemWriteOnly}
	for _, f := range valid {
		if !f.Valid() {
			t.Errorf("%v should be valid", f)
		}
	}
	invalid := []MemFlags{0, MemReadWrite | MemReadOnly, MemReadOnly | MemWriteOnly}
	for _, f := range invalid {
		if f.Valid() {
			t.Errorf("%v should be invalid", f)
		}
	}
}

func TestCommandTypeString(t *testing.T) {
	if CommandReadBuffer.String() != "READ_BUFFER" {
		t.Errorf("got %q", CommandReadBuffer.String())
	}
	if CommandType(0).String() != "UNKNOWN_COMMAND" {
		t.Errorf("got %q", CommandType(0).String())
	}
}

func TestDeviceTypeString(t *testing.T) {
	if DeviceTypeAccelerator.String() != "accelerator" {
		t.Errorf("got %q", DeviceTypeAccelerator.String())
	}
	if DeviceTypeAll.String() != "all" {
		t.Errorf("got %q", DeviceTypeAll.String())
	}
}
