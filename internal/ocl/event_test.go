package ocl

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEventLifecycle(t *testing.T) {
	e := NewEvent(CommandWriteBuffer)
	if e.CommandType() != CommandWriteBuffer {
		t.Fatalf("CommandType = %v", e.CommandType())
	}
	if e.Status() != Queued {
		t.Fatalf("new event status = %v, want Queued", e.Status())
	}
	e.SetStatus(Submitted)
	if e.Status() != Submitted {
		t.Fatalf("status = %v, want Submitted", e.Status())
	}
	e.SetStatus(Running)
	e.Complete()
	if e.Status() != Complete {
		t.Fatalf("status = %v, want Complete", e.Status())
	}
	if err := e.Wait(); err != nil {
		t.Fatalf("Wait returned %v", err)
	}
}

func TestEventMonotonicity(t *testing.T) {
	e := NewEvent(CommandTask)
	e.SetStatus(Running)
	e.SetStatus(Submitted) // regression must be ignored
	if e.Status() != Running {
		t.Fatalf("status regressed to %v", e.Status())
	}
	e.Complete()
	e.SetStatus(Running) // post-terminal transitions ignored
	if e.Status() != Complete {
		t.Fatalf("terminal state not sticky: %v", e.Status())
	}
}

func TestEventFailure(t *testing.T) {
	e := NewEvent(CommandReadBuffer)
	e.Fail(Errf(ErrOutOfResources, "device queue full"))
	if !e.Status().Failed() {
		t.Fatalf("status = %v, want failure", e.Status())
	}
	if err := e.Wait(); err == nil {
		t.Fatal("Wait must return the terminal error")
	}
	if StatusOf(e.Err()) != ErrOutOfResources {
		t.Fatalf("Err = %v", e.Err())
	}
	// Failure is sticky: a later Complete must not resurrect the event.
	e.Complete()
	if !e.Status().Failed() {
		t.Fatal("failure was overwritten by Complete")
	}
}

func TestEventFailNilErrCompletes(t *testing.T) {
	e := NewEvent(CommandTask)
	e.Fail(nil)
	if e.Status() != Complete || e.Err() != nil {
		t.Fatalf("Fail(nil) should complete; status=%v err=%v", e.Status(), e.Err())
	}
}

func TestEventWaitBlocksUntilComplete(t *testing.T) {
	e := NewEvent(CommandNDRangeKernel)
	released := make(chan error, 1)
	go func() { released <- e.Wait() }()
	select {
	case <-released:
		t.Fatal("Wait returned before completion")
	case <-time.After(10 * time.Millisecond):
	}
	e.Complete()
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("Wait returned %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Wait did not return after completion")
	}
}

func TestEventConcurrentWaiters(t *testing.T) {
	e := NewEvent(CommandMarker)
	const waiters = 32
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = e.Wait()
		}(i)
	}
	e.Complete()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
}

func TestEventOnStatusCallback(t *testing.T) {
	e := NewEvent(CommandWriteBuffer)
	var mu sync.Mutex
	var fired []ExecStatus
	e.OnStatus(Running, func(s ExecStatus, err error) {
		mu.Lock()
		fired = append(fired, s)
		mu.Unlock()
	})
	e.SetStatus(Submitted)
	mu.Lock()
	n := len(fired)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("callback fired at Submitted")
	}
	e.SetStatus(Running)
	mu.Lock()
	if len(fired) != 1 || fired[0] != Running {
		t.Fatalf("fired = %v, want [Running]", fired)
	}
	mu.Unlock()

	// Registering for an already-passed status fires immediately.
	var immediate bool
	e.OnStatus(Submitted, func(s ExecStatus, err error) { immediate = true })
	if !immediate {
		t.Fatal("OnStatus for a passed state must fire immediately")
	}
}

func TestEventOnStatusFiresOnFailure(t *testing.T) {
	e := NewEvent(CommandReadBuffer)
	got := make(chan error, 1)
	e.OnStatus(Complete, func(s ExecStatus, err error) { got <- err })
	e.Fail(ErrInvalidMemObject)
	select {
	case err := <-got:
		if StatusOf(err) != ErrInvalidMemObject {
			t.Fatalf("callback err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("callback did not fire on failure")
	}
}

func TestWaitForEvents(t *testing.T) {
	a := CompletedEvent(CommandMarker)
	b := NewEvent(CommandTask)
	go func() {
		time.Sleep(5 * time.Millisecond)
		b.Complete()
	}()
	if err := WaitForEvents(a, b); err != nil {
		t.Fatalf("WaitForEvents = %v", err)
	}
}

func TestWaitForEventsPropagatesFailure(t *testing.T) {
	a := CompletedEvent(CommandMarker)
	b := FailedEvent(CommandTask, ErrOutOfResources)
	err := WaitForEvents(a, b)
	if StatusOf(err) != ErrExecStatusErrorInWait {
		t.Fatalf("err = %v, want CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST", err)
	}
}

func TestWaitForEventsNilEvent(t *testing.T) {
	if err := WaitForEvents(CompletedEvent(CommandMarker), nil); StatusOf(err) != ErrInvalidEventWaitList {
		t.Fatalf("err = %v", err)
	}
}

func TestCompletedAndFailedConstructors(t *testing.T) {
	c := CompletedEvent(CommandBarrier)
	if c.Status() != Complete || c.CommandType() != CommandBarrier {
		t.Fatalf("CompletedEvent: status=%v type=%v", c.Status(), c.CommandType())
	}
	f := FailedEvent(CommandUser, ErrInvalidOperation)
	if !f.Status().Failed() {
		t.Fatalf("FailedEvent not failed: %v", f.Status())
	}
}

func TestEventRandomTransitionSequences(t *testing.T) {
	// Property: under any sequence of SetStatus/Fail/Complete calls, the
	// status never regresses, terminal states are sticky, and Wait always
	// returns once any terminal call happened.
	if err := quick.Check(func(ops []uint8) bool {
		e := NewEvent(CommandTask)
		lowest := Queued
		terminal := false
		for _, op := range ops {
			switch op % 5 {
			case 0:
				e.SetStatus(Submitted)
			case 1:
				e.SetStatus(Running)
			case 2:
				e.Complete()
				terminal = true
			case 3:
				e.Fail(ErrOutOfResources)
				terminal = true
			case 4:
				e.SetStatus(Queued) // regression attempt
			}
			s := e.Status()
			if !s.Failed() && s > lowest {
				return false // regressed
			}
			if !s.Failed() {
				lowest = s
			}
			if terminal && !e.Status().Done() {
				return false // terminal state lost
			}
		}
		if terminal {
			done := make(chan struct{})
			go func() { e.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(time.Second):
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
