package ocl

import (
	"encoding/binary"
	"math"
)

// ArgKind discriminates kernel argument encodings on the wire and in the
// Device Manager's per-session argument tables.
type ArgKind uint8

// Kernel argument kinds.
const (
	ArgBuffer  ArgKind = 1 // device buffer reference (by id)
	ArgInt32   ArgKind = 2
	ArgUint32  ArgKind = 3
	ArgInt64   ArgKind = 4
	ArgUint64  ArgKind = 5
	ArgFloat32 ArgKind = 6
	ArgFloat64 ArgKind = 7
)

// String names the argument kind.
func (k ArgKind) String() string {
	switch k {
	case ArgBuffer:
		return "buffer"
	case ArgInt32:
		return "int32"
	case ArgUint32:
		return "uint32"
	case ArgInt64:
		return "int64"
	case ArgUint64:
		return "uint64"
	case ArgFloat32:
		return "float32"
	case ArgFloat64:
		return "float64"
	}
	return "invalid"
}

// Arg is the runtime-neutral encoding of a clSetKernelArg value: either a
// buffer reference or a little-endian packed scalar, exactly what crosses
// the wire to the Device Manager.
type Arg struct {
	Kind ArgKind
	// BufferID is set for ArgBuffer arguments. IDs are session-scoped
	// handles issued by the owning runtime.
	BufferID uint64
	// Scalar holds the little-endian packed bytes of scalar arguments.
	Scalar [8]byte
	// ScalarLen is the meaningful prefix length of Scalar (4 or 8).
	ScalarLen uint8
}

// PackArg converts a Go value accepted by Kernel.SetArg into its wire
// encoding. Buffers are packed by the runtimes themselves since buffer IDs
// are runtime-private; PackArg handles scalars and the generic int, which
// is packed as int64 to match OpenCL's size_t-style arguments on 64-bit
// hosts.
func PackArg(value any) (Arg, error) {
	var a Arg
	switch v := value.(type) {
	case int32:
		a.Kind, a.ScalarLen = ArgInt32, 4
		binary.LittleEndian.PutUint32(a.Scalar[:4], uint32(v))
	case uint32:
		a.Kind, a.ScalarLen = ArgUint32, 4
		binary.LittleEndian.PutUint32(a.Scalar[:4], v)
	case int:
		a.Kind, a.ScalarLen = ArgInt64, 8
		binary.LittleEndian.PutUint64(a.Scalar[:8], uint64(int64(v)))
	case int64:
		a.Kind, a.ScalarLen = ArgInt64, 8
		binary.LittleEndian.PutUint64(a.Scalar[:8], uint64(v))
	case uint64:
		a.Kind, a.ScalarLen = ArgUint64, 8
		binary.LittleEndian.PutUint64(a.Scalar[:8], v)
	case float32:
		a.Kind, a.ScalarLen = ArgFloat32, 4
		binary.LittleEndian.PutUint32(a.Scalar[:4], math.Float32bits(v))
	case float64:
		a.Kind, a.ScalarLen = ArgFloat64, 8
		binary.LittleEndian.PutUint64(a.Scalar[:8], math.Float64bits(v))
	default:
		return Arg{}, Errf(ErrInvalidArgValue, "unsupported kernel argument type %T", value)
	}
	return a, nil
}

// BufferArg builds the wire encoding of a buffer argument.
func BufferArg(id uint64) Arg {
	return Arg{Kind: ArgBuffer, BufferID: id}
}

// Int32 decodes the argument as int32; valid only for ArgInt32/ArgUint32.
func (a Arg) Int32() int32 { return int32(binary.LittleEndian.Uint32(a.Scalar[:4])) }

// Uint32 decodes the argument as uint32.
func (a Arg) Uint32() uint32 { return binary.LittleEndian.Uint32(a.Scalar[:4]) }

// Int64 decodes the argument as int64; valid for ArgInt64/ArgUint64.
func (a Arg) Int64() int64 { return int64(binary.LittleEndian.Uint64(a.Scalar[:8])) }

// Uint64 decodes the argument as uint64.
func (a Arg) Uint64() uint64 { return binary.LittleEndian.Uint64(a.Scalar[:8]) }

// Float32 decodes the argument as float32; valid for ArgFloat32.
func (a Arg) Float32() float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(a.Scalar[:4]))
}

// Float64 decodes the argument as float64; valid for ArgFloat64.
func (a Arg) Float64() float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(a.Scalar[:8]))
}

// IntValue decodes any integer-kinded argument as int64, widening 32-bit
// values. It is the decoding used by accelerator models that take sizes.
func (a Arg) IntValue() int64 {
	switch a.Kind {
	case ArgInt32:
		return int64(a.Int32())
	case ArgUint32:
		return int64(a.Uint32())
	case ArgInt64, ArgUint64:
		return a.Int64()
	}
	return 0
}
