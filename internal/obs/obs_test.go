package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"blastfunction/internal/metrics"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if id := tr.Sample(); id != 0 {
		t.Fatalf("nil tracer sampled trace %v", id)
	}
	if id := tr.NewSpan(); id != 0 {
		t.Fatalf("nil tracer allocated span %v", id)
	}
	tr.Record(Span{Trace: 1})
	tr.End(1, 2, 0, "call", "", time.Now())
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer holds spans: %v", got)
	}
}

func TestSampleRates(t *testing.T) {
	never := New(Config{Component: "c", SampleRate: 0})
	always := New(Config{Component: "c", SampleRate: 1})
	for i := 0; i < 1000; i++ {
		if id := never.Sample(); id != 0 {
			t.Fatalf("rate-0 tracer sampled %v", id)
		}
		if id := always.Sample(); id == 0 {
			t.Fatal("rate-1 tracer skipped a trace")
		}
	}
	// A fractional rate should land near its expectation over many draws.
	half := New(Config{Component: "c", SampleRate: 0.5})
	hits := 0
	for i := 0; i < 10000; i++ {
		if half.Sample() != 0 {
			hits++
		}
	}
	if hits < 4000 || hits > 6000 {
		t.Fatalf("rate-0.5 sampled %d/10000", hits)
	}
}

func TestRingBoundsAndOrder(t *testing.T) {
	tr := New(Config{Component: "c", RingSize: 4})
	for i := 1; i <= 6; i++ {
		tr.Record(Span{Trace: TraceID(i), ID: SpanID(i), Stage: "call"})
	}
	got := tr.Spans()
	if len(got) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(got))
	}
	for i, sp := range got {
		if want := TraceID(i + 3); sp.Trace != want {
			t.Fatalf("span %d: trace %v, want %v (oldest-first eviction)", i, sp.Trace, want)
		}
	}
	// Untraced spans never land in the ring.
	tr.Record(Span{Trace: 0, Stage: "call"})
	if len(tr.Spans()) != 4 || tr.Spans()[3].Trace != 6 {
		t.Fatal("untraced span entered the ring")
	}
}

func TestSpanJSONHexIDs(t *testing.T) {
	sp := Span{Trace: 0xabc, ID: 0x1, Parent: 0x2, Component: "library", Stage: "call",
		Start: time.Unix(10, 0).UTC(), Duration: 1500 * time.Nanosecond}
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"trace":"0000000000000abc"`) {
		t.Fatalf("trace id not hex-encoded: %s", b)
	}
	var back Span
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace != sp.Trace || back.ID != sp.ID || back.Parent != sp.Parent || back.Duration != sp.Duration {
		t.Fatalf("round trip mismatch: %+v != %+v", back, sp)
	}
}

func TestStageHistogramsExported(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{Component: "manager", Registry: reg,
		Labels: metrics.Labels{"device": "fpga0"}})
	tr.Record(Span{Trace: 1, ID: 2, Stage: "queue-wait", Duration: 2 * time.Millisecond})
	tr.Record(Span{Trace: 1, ID: 3, Stage: "execute", Duration: 5 * time.Millisecond})
	text := reg.Render()
	for _, want := range []string{
		"bf_stage_seconds_bucket",
		`stage="queue-wait"`,
		`stage="execute"`,
		`component="manager"`,
		`device="fpga0"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHandlerFilters(t *testing.T) {
	tr := New(Config{Component: "c", RingSize: 16})
	for i := 1; i <= 5; i++ {
		tr.Record(Span{Trace: TraceID(i%2 + 1), ID: SpanID(i), Stage: "call"})
	}
	get := func(url string) (int, []Span) {
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var spans []Span
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
				t.Fatalf("%s: %v", url, err)
			}
		}
		return rec.Code, spans
	}
	if code, spans := get("/debug/spans"); code != 200 || len(spans) != 5 {
		t.Fatalf("unfiltered: code %d, %d spans", code, len(spans))
	}
	if code, spans := get("/debug/spans?n=2"); code != 200 || len(spans) != 2 || spans[1].ID != 5 {
		t.Fatalf("?n=2: code %d, spans %v", code, spans)
	}
	if code, spans := get("/debug/spans?trace=0000000000000002"); code != 200 || len(spans) != 3 {
		t.Fatalf("?trace=2: code %d, %d spans", code, len(spans))
	}
	if code, _ := get("/debug/spans?n=bogus"); code != 400 {
		t.Fatalf("bad n: code %d, want 400", code)
	}
	if code, _ := get("/debug/spans?trace=zz"); code != 400 {
		t.Fatalf("bad trace: code %d, want 400", code)
	}
}

func TestServeTailEncodeFailure(t *testing.T) {
	// +Inf is not representable in JSON: the encoder must fail and the
	// handler must answer with an error status, not a truncated 200.
	rec := httptest.NewRecorder()
	ServeTail(rec, httptest.NewRequest("GET", "/debug/tasks", nil), []float64{1, math.Inf(1)})
	if rec.Code != 500 {
		t.Fatalf("encode failure answered %d, want 500", rec.Code)
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{Component: "c", RingSize: 64, SampleRate: 1, Registry: reg})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					trace := tr.Sample()
					tr.End(trace, tr.NewSpan(), 0, "call", "", time.Now())
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		tr.Spans()
		reg.Render()
	}
	close(stop)
	wg.Wait()
}

func TestEvictedForCountsAndHeader(t *testing.T) {
	tr := New(Config{Component: "c", RingSize: 4})
	for i := 0; i < 4; i++ {
		tr.Record(Span{Trace: 7, ID: SpanID(i + 1), Stage: "call"})
	}
	// Two more records overwrite the two oldest trace-7 spans.
	tr.Record(Span{Trace: 9, ID: 100, Stage: "call"})
	tr.Record(Span{Trace: 9, ID: 101, Stage: "call"})
	if n, exact := tr.EvictedFor(7); n != 2 || !exact {
		t.Fatalf("EvictedFor(7) = %d, exact=%v; want 2, true", n, exact)
	}
	if n, exact := tr.EvictedFor(9); n != 0 || !exact {
		t.Fatalf("EvictedFor(9) = %d, exact=%v; want 0, true", n, exact)
	}

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}
	rec := get("/debug/spans?trace=0000000000000007")
	if rec.Code != 200 {
		t.Fatalf("trace query: code %d", rec.Code)
	}
	if got := rec.Header().Get("X-Spans-Evicted"); got != "2" {
		t.Fatalf("X-Spans-Evicted = %q, want \"2\"", got)
	}
	if got := rec.Header().Get("X-Spans-Evicted-Exact"); got != "" {
		t.Fatalf("X-Spans-Evicted-Exact = %q, want unset for an exact count", got)
	}
	var spans []Span
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].ID != 3 || spans[1].ID != 4 {
		t.Fatalf("surviving trace-7 spans = %v, want IDs 3,4", spans)
	}
	// A trace with no evictions carries no header at all.
	if got := get("/debug/spans?trace=0000000000000009").Header().Get("X-Spans-Evicted"); got != "" {
		t.Fatalf("X-Spans-Evicted on un-evicted trace = %q, want unset", got)
	}
}

func TestEvictedMapOverflowTurnsInexact(t *testing.T) {
	// A size-1 ring makes every record past the first an eviction of a
	// distinct trace, so the per-trace map hits evictedCap quickly and
	// resets into evictedOther — after which counts are lower bounds.
	tr := New(Config{Component: "c", RingSize: 1})
	for i := 1; i <= evictedCap+2; i++ {
		tr.Record(Span{Trace: TraceID(i), ID: 1, Stage: "call"})
	}
	if _, exact := tr.EvictedFor(TraceID(1)); exact {
		t.Fatal("EvictedFor stayed exact after the eviction map overflowed")
	}
	// The ring now holds trace evictedCap+2; one more record evicts it
	// into the fresh post-reset map, so its count is 1 but inexact.
	last := TraceID(evictedCap + 2)
	tr.Record(Span{Trace: last + 1, ID: 1, Stage: "call"})
	if n, exact := tr.EvictedFor(last); n != 1 || exact {
		t.Fatalf("EvictedFor(last) = %d, exact=%v; want 1, false", n, exact)
	}
	rec := httptest.NewRecorder()
	url := "/debug/spans?trace=" + last.String()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	if got := rec.Header().Get("X-Spans-Evicted"); got != "1" {
		t.Fatalf("X-Spans-Evicted = %q, want \"1\"", got)
	}
	if got := rec.Header().Get("X-Spans-Evicted-Exact"); got != "false" {
		t.Fatalf("X-Spans-Evicted-Exact = %q, want \"false\"", got)
	}
}
