package obs

import (
	"strings"
	"testing"
	"time"

	"blastfunction/internal/metrics"
)

func TestRuntimeCollectorSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewRuntimeCollector(reg, metrics.Labels{"component": "test"})
	c.SampleOnce()
	text := reg.Render()
	for _, want := range []string{
		"bf_runtime_goroutines",
		"bf_runtime_heap_alloc_bytes",
		"bf_runtime_heap_objects",
		"bf_runtime_gc_pause_seconds_total",
		"bf_runtime_gc_cycles_total",
		`bf_runtime_sched_latency_seconds{component="test",quantile="0.5"}`,
		`bf_runtime_sched_latency_seconds{component="test",quantile="0.99"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if c.Goroutines() < 1 {
		t.Fatalf("goroutines %d", c.Goroutines())
	}
	// The render parses cleanly, so the series reach a TSDB via scrape.
	if _, err := metrics.Parse(text); err != nil {
		t.Fatalf("self-render does not parse: %v", err)
	}
}

func TestRuntimeCollectorGCPauseMonotone(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewRuntimeCollector(reg, nil)
	c.SampleOnce()
	v1, _ := valueOf(t, reg, "bf_runtime_gc_pause_seconds_total")
	c.SampleOnce()
	v2, _ := valueOf(t, reg, "bf_runtime_gc_pause_seconds_total")
	if v2 < v1 {
		t.Fatalf("gc pause counter went backwards: %v -> %v", v1, v2)
	}
}

func valueOf(t *testing.T, reg *metrics.Registry, name string) (float64, bool) {
	t.Helper()
	samples, err := metrics.Parse(reg.Render())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

func TestProfileCaptureWritesAndRateLimits(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1700000000, 0)
	p := &ProfileCapture{Dir: dir, MinInterval: 30 * time.Second,
		Now: func() time.Time { return now }}

	paths, err := p.Capture("SLOFastBurn")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths %v", paths)
	}
	for _, path := range paths {
		if !strings.Contains(path, "SLOFastBurn") || !strings.HasSuffix(path, ".pprof") {
			t.Fatalf("path %q", path)
		}
	}

	// Same tag within MinInterval: rate-limited, no files.
	paths, err = p.Capture("SLOFastBurn")
	if err != nil || paths != nil {
		t.Fatalf("rate limit: paths=%v err=%v", paths, err)
	}
	// Different tag captures immediately.
	now = now.Add(time.Second)
	if paths, err = p.Capture("GoroutineLeak"); err != nil || len(paths) != 2 {
		t.Fatalf("second tag: paths=%v err=%v", paths, err)
	}
	// Past the interval the original tag captures again.
	now = now.Add(time.Minute)
	if paths, err = p.Capture("SLOFastBurn"); err != nil || len(paths) != 2 {
		t.Fatalf("after interval: paths=%v err=%v", paths, err)
	}
	if got := len(p.SortedFiles()); got != 6 {
		t.Fatalf("files on disk: %d", got)
	}

	var disabled *ProfileCapture
	if paths, err := disabled.Capture("x"); paths != nil || err != nil {
		t.Fatalf("nil capture: %v %v", paths, err)
	}
}

func TestSanitizeTag(t *testing.T) {
	if got := sanitizeTag("a/b c%"); got != "a-b-c-" {
		t.Fatalf("sanitized %q", got)
	}
	if got := sanitizeTag(""); got != "alert" {
		t.Fatalf("empty tag %q", got)
	}
}
