package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the tracer's span ring as JSON at /debug/spans.
// Query parameters: ?trace=<hex id> filters to one trace, ?n=<count>
// keeps only the most recent n spans. Trace queries additionally carry
// an X-Spans-Evicted header when the ring has already overwritten part
// of that trace, so clients can warn that the timeline is partial.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spans := t.Spans()
		if s := r.URL.Query().Get("trace"); s != "" {
			id, err := ParseTraceID(s)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			kept := spans[:0]
			for _, sp := range spans {
				if sp.Trace == id {
					kept = append(kept, sp)
				}
			}
			spans = kept
			if n, exact := t.EvictedFor(id); n > 0 {
				w.Header().Set("X-Spans-Evicted", strconv.Itoa(n))
				if !exact {
					w.Header().Set("X-Spans-Evicted-Exact", "false")
				}
			}
		}
		ServeTail(w, r, spans)
	})
}

// ServeTail writes a ring snapshot (oldest first) as indented JSON,
// honouring an optional ?n= limit — keep the n most recent entries — and
// reporting encode failures as an HTTP error status instead of a
// truncated 200. Shared by /debug/spans and the manager's /debug/tasks.
func ServeTail[T any](w http.ResponseWriter, r *http.Request, snapshot []T) {
	if s := r.URL.Query().Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "bad n parameter: want a non-negative integer", http.StatusBadRequest)
			return
		}
		if n < len(snapshot) {
			snapshot = snapshot[len(snapshot)-n:]
		}
	}
	// Encode into memory first: once body bytes are on the wire the
	// status line is fixed, and a mid-stream encode error would leave the
	// client with garbage under a 200.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snapshot); err != nil {
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}
