// Continuous runtime profiling: every BlastFunction binary exports a
// small bf_runtime_* family (goroutines, heap, GC pause, scheduler
// latency) so tail blowups caused by the runtime itself — goroutine
// pileups, heap growth forcing GC, scheduler delay — are attributable
// from the same TSDB as the request metrics, and a ProfileCapture hook
// snapshots pprof evidence the moment an alert fires instead of after
// the incident ends.
package obs

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	runtimemetrics "runtime/metrics"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"blastfunction/internal/metrics"
)

// schedLatencyMetric is the runtime/metrics histogram of time goroutines
// spend runnable before running — the "invisible queue" ahead of every
// request queue.
const schedLatencyMetric = "/sched/latencies:seconds"

// RuntimeCollector samples Go runtime health into a metrics.Registry.
// Series (all prefixed bf_runtime_):
//
//	goroutines                  gauge   current goroutine count
//	heap_alloc_bytes            gauge   live heap
//	heap_objects                gauge   live objects
//	gc_pause_seconds_total      counter cumulative stop-the-world pause
//	gc_cycles_total             counter completed GC cycles
//	sched_latency_seconds{q}    gauge   p50/p99 scheduler latency since start
type RuntimeCollector struct {
	goroutines  metrics.Gauge
	heapAlloc   metrics.Gauge
	heapObjects metrics.Gauge
	gcPause     metrics.Counter
	gcCycles    metrics.Counter
	schedP50    metrics.Gauge
	schedP99    metrics.Gauge

	mu        sync.Mutex
	lastPause time.Duration // PauseTotalNs already accounted
	lastGC    uint32        // NumGC already accounted
	samples   []runtimemetrics.Sample
}

// NewRuntimeCollector creates a collector exporting into reg with the
// given extra labels (may be nil) and takes an initial sample so the
// series exist from the first scrape.
func NewRuntimeCollector(reg *metrics.Registry, labels metrics.Labels) *RuntimeCollector {
	c := &RuntimeCollector{
		goroutines: reg.Gauge("bf_runtime_goroutines",
			"Current number of goroutines.", labels),
		heapAlloc: reg.Gauge("bf_runtime_heap_alloc_bytes",
			"Bytes of live heap objects.", labels),
		heapObjects: reg.Gauge("bf_runtime_heap_objects",
			"Number of live heap objects.", labels),
		gcPause: reg.Counter("bf_runtime_gc_pause_seconds_total",
			"Cumulative GC stop-the-world pause time.", labels),
		gcCycles: reg.Counter("bf_runtime_gc_cycles_total",
			"Completed GC cycles.", labels),
		schedP50: reg.Gauge("bf_runtime_sched_latency_seconds",
			"Scheduler latency quantiles since process start.", withQ(labels, "0.5")),
		schedP99: reg.Gauge("bf_runtime_sched_latency_seconds",
			"Scheduler latency quantiles since process start.", withQ(labels, "0.99")),
		samples: []runtimemetrics.Sample{{Name: schedLatencyMetric}},
	}
	c.SampleOnce()
	return c
}

func withQ(labels metrics.Labels, q string) metrics.Labels {
	out := metrics.Labels{"quantile": q}
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// SampleOnce takes one sample of every series now.
func (c *RuntimeCollector) SampleOnce() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.goroutines.Set(float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.heapAlloc.Set(float64(ms.HeapAlloc))
	c.heapObjects.Set(float64(ms.HeapObjects))
	pause := time.Duration(ms.PauseTotalNs)
	if d := pause - c.lastPause; d > 0 {
		c.gcPause.Add(d.Seconds())
	}
	c.lastPause = pause
	if d := ms.NumGC - c.lastGC; d > 0 {
		c.gcCycles.Add(float64(d))
	}
	c.lastGC = ms.NumGC
	runtimemetrics.Read(c.samples)
	if h, ok := c.samples[0].Value.Float64Histogram(), c.samples[0].Value.Kind() == runtimemetrics.KindFloat64Histogram; ok && h != nil {
		c.schedP50.Set(histQuantile(h, 0.5))
		c.schedP99.Set(histQuantile(h, 0.99))
	}
}

// Goroutines returns the goroutine count as of the last SampleOnce.
func (c *RuntimeCollector) Goroutines() int { return int(c.goroutines.Value()) }

// Run samples on the interval until ctx is cancelled (0 picks 5s).
func (c *RuntimeCollector) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.SampleOnce()
		}
	}
}

// histQuantile estimates the q-quantile of a runtime/metrics histogram.
// Bucket boundaries may include ±Inf; the estimate clamps to the nearest
// finite boundary like Prometheus does.
func histQuantile(h *runtimemetrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			if ub := h.Buckets[i+1]; !math.IsInf(ub, 0) {
				return ub
			}
			return h.Buckets[i]
		}
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 0) {
		last = h.Buckets[len(h.Buckets)-2]
	}
	return last
}

// ProfileCapture writes pprof snapshots to a directory when triggered —
// the alert engine's OnFire hook calls Capture so goroutine and heap
// evidence exists from the moment a burn-rate or leak rule fires.
type ProfileCapture struct {
	// Dir receives the snapshot files. Created on first capture.
	Dir string
	// MinInterval rate-limits captures per tag (default 30s): a rule
	// that stays firing across evaluations produces one snapshot per
	// interval, not one per tick.
	MinInterval time.Duration
	// Now is injectable for tests.
	Now func() time.Time

	mu   sync.Mutex
	last map[string]time.Time
}

// Capture snapshots the goroutine and heap profiles, tagged with the
// triggering rule's name. It returns the written file paths, or nil when
// rate-limited.
func (p *ProfileCapture) Capture(tag string) ([]string, error) {
	if p == nil || p.Dir == "" {
		return nil, nil
	}
	now := time.Now
	if p.Now != nil {
		now = p.Now
	}
	min := p.MinInterval
	if min <= 0 {
		min = 30 * time.Second
	}
	tag = sanitizeTag(tag)
	t := now()
	p.mu.Lock()
	if last, ok := p.last[tag]; ok && t.Sub(last) < min {
		p.mu.Unlock()
		return nil, nil
	}
	if p.last == nil {
		p.last = make(map[string]time.Time)
	}
	p.last[tag] = t
	p.mu.Unlock()

	if err := os.MkdirAll(p.Dir, 0o755); err != nil {
		return nil, err
	}
	stamp := t.UTC().Format("20060102T150405.000")
	var paths []string
	for _, prof := range []string{"goroutine", "heap"} {
		path := filepath.Join(p.Dir, fmt.Sprintf("%s-%s.%s.pprof", stamp, tag, prof))
		f, err := os.Create(path)
		if err != nil {
			return paths, err
		}
		err = pprof.Lookup(prof).WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// SanitizeTag keeps file names shell- and URL-safe — shared with the
// flight recorder's explain-report capture so incident artifacts follow
// one naming scheme.
func SanitizeTag(tag string) string { return sanitizeTag(tag) }

// sanitizeTag keeps file names shell- and URL-safe.
func sanitizeTag(tag string) string {
	if tag == "" {
		return "alert"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, tag)
}

// SortedFiles lists the capture directory's snapshot files, oldest
// first — what blastctl or an operator tars up after an incident.
func (p *ProfileCapture) SortedFiles() []string {
	if p == nil || p.Dir == "" {
		return nil
	}
	entries, err := os.ReadDir(p.Dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".pprof") {
			out = append(out, filepath.Join(p.Dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out
}
