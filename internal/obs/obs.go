// Package obs is BlastFunction's lightweight distributed-tracing
// subsystem: the per-request, cross-component view the paper's evaluation
// needs to decompose an accelerated call into library, network, queue and
// board time.
//
// The model is deliberately small. The Remote Library samples a trace at
// the first operation of each flush-formed task; every operation of the
// task shares the TraceID and gets its own SpanID. The IDs ride to the
// Device Manager as trailing wire fields (byte-identical frames when
// tracing is off), and each component records completed Spans for its
// stage — client call issue, RPC send, deferred-ack wait, central-queue
// wait, worker execution, notification delivery — into a per-process
// bounded ring served at /debug/spans. Per-stage latencies feed
// bf_stage_seconds histograms when a metrics.Registry is attached, so the
// Accelerators Registry's Metrics Gatherer scrapes the decomposition
// alongside the utilization series.
//
// A nil *Tracer is valid everywhere and records nothing: the hot path's
// tracing tax when disabled is one nil check.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"blastfunction/internal/metrics"
)

// TraceID identifies one end-to-end request (one flush-formed task and
// the client calls that built it). Zero means untraced.
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no span" (used
// for absent parents).
type SpanID uint64

// MarshalJSON renders the ID as a fixed-width hex string, the form
// blastctl accepts back.
func (id TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + fmt.Sprintf("%016x", uint64(id)) + `"`), nil
}

// UnmarshalJSON parses the hex form.
func (id *TraceID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseTraceID(s)
	*id = v
	return err
}

// MarshalJSON renders the ID as a fixed-width hex string.
func (id SpanID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + fmt.Sprintf("%016x", uint64(id)) + `"`), nil
}

// UnmarshalJSON parses the hex form.
func (id *SpanID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := strconv.ParseUint(s, 16, 64)
	*id = SpanID(v)
	return err
}

// ParseTraceID parses the hex form produced by MarshalJSON (and printed
// by blastctl).
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// String renders the ID in its canonical hex form.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the ID in its canonical hex form.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// Span is one completed stage of a traced request. Spans are recorded
// whole (at their end), never mutated, so the ring needs no per-span
// locking.
type Span struct {
	Trace  TraceID `json:"trace"`
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"`
	// Component names the process role that recorded the span
	// ("library", "manager", "gateway").
	Component string `json:"component"`
	// Stage names what the span measures ("call", "send", "ack-wait",
	// "task", "queue-wait", "execute", "op", "notify").
	Stage string `json:"stage"`
	// Note carries small free-form context (operation kind, method name).
	Note     string        `json:"note,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
}

// End returns the span's end time.
func (s Span) End() time.Time { return s.Start.Add(s.Duration) }

// Config parameterizes a Tracer.
type Config struct {
	// Component stamps every span this tracer records.
	Component string
	// SampleRate is the fraction of new traces Sample starts, 0..1.
	// Zero (or negative) never samples — components that only continue
	// traces started elsewhere (the Device Manager) leave it zero.
	SampleRate float64
	// RingSize bounds the span ring; 0 selects 4096.
	RingSize int
	// Seed makes the sampling and ID sequence deterministic for tests;
	// 0 selects a fixed default (IDs only need to be unique, not secret).
	Seed uint64
	// Registry, when set, receives per-stage bf_stage_seconds histogram
	// series labelled with Labels plus {component, stage}.
	Registry *metrics.Registry
	// Labels are added to every exported stage histogram series.
	Labels metrics.Labels
}

// Tracer samples traces, allocates span IDs, and keeps the component's
// bounded span ring. All methods are safe on a nil receiver (no-ops), so
// call sites need no tracing-enabled branches.
type Tracer struct {
	component string
	threshold uint64        // sample iff rand() < threshold; 0 never, MaxUint64 always
	rng       atomic.Uint64 // splitmix64 state shared by sampling and ID allocation

	mu   sync.Mutex
	buf  []Span
	next int
	full bool

	// evicted counts ring overwrites per trace, so /debug/spans can tell
	// a caller its timeline is partial instead of silently rendering
	// gaps. Bounded: at capacity the map resets and evictedOther absorbs
	// everything already counted.
	evicted      map[TraceID]int
	evictedOther int

	reg    *metrics.Registry
	labels metrics.Labels
	hmu    sync.Mutex
	hists  map[string]metrics.Histogram
}

// evictedCap bounds the per-trace eviction map.
const evictedCap = 4096

// New creates a Tracer.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	if cfg.Component == "" {
		cfg.Component = "unknown"
	}
	t := &Tracer{
		component: cfg.Component,
		buf:       make([]Span, cfg.RingSize),
		reg:       cfg.Registry,
		labels:    cfg.Labels,
		hists:     make(map[string]metrics.Histogram),
	}
	switch {
	case cfg.SampleRate <= 0:
		t.threshold = 0
	case cfg.SampleRate >= 1:
		t.threshold = math.MaxUint64
	default:
		t.threshold = uint64(cfg.SampleRate * float64(math.MaxUint64))
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9bf_157a6e_5bf15 // arbitrary fixed default
	}
	t.rng.Store(seed)
	return t
}

// Component reports the component name stamped on recorded spans.
func (t *Tracer) Component() string {
	if t == nil {
		return ""
	}
	return t.component
}

// rand draws the next pseudo-random word (splitmix64: a lock-free atomic
// add plus mixing, cheap enough for the per-operation hot path).
func (t *Tracer) rand() uint64 {
	x := t.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sample decides whether a new request is traced: it returns a fresh
// nonzero TraceID with probability SampleRate, else zero.
func (t *Tracer) Sample() TraceID {
	if t == nil || t.threshold == 0 {
		return 0
	}
	if t.threshold != math.MaxUint64 && t.rand() >= t.threshold {
		return 0
	}
	id := t.rand()
	if id == 0 {
		id = 1
	}
	return TraceID(id)
}

// NewSpan allocates a span ID. IDs are random so spans minted by
// different processes for the same trace do not collide.
func (t *Tracer) NewSpan() SpanID {
	if t == nil {
		return 0
	}
	id := t.rand()
	if id == 0 {
		id = 1
	}
	return SpanID(id)
}

// Record stores one completed span in the ring and observes its duration
// into the stage histogram. Spans without a trace are dropped.
func (t *Tracer) Record(sp Span) {
	if t == nil || sp.Trace == 0 {
		return
	}
	if sp.Component == "" {
		sp.Component = t.component
	}
	t.mu.Lock()
	if t.full {
		if old := t.buf[t.next]; old.Trace != 0 {
			if t.evicted == nil {
				t.evicted = make(map[TraceID]int)
			} else if len(t.evicted) >= evictedCap {
				for _, n := range t.evicted {
					t.evictedOther += n
				}
				t.evicted = make(map[TraceID]int)
			}
			t.evicted[old.Trace]++
		}
	}
	t.buf[t.next] = sp
	t.next = (t.next + 1) % len(t.buf)
	if t.next == 0 {
		t.full = true
	}
	t.mu.Unlock()
	if t.reg != nil {
		// Recorded spans always belong to a sampled trace, so each
		// observation doubles as the bucket's exemplar: the exact trace
		// behind a burning stage latency is one /metrics scrape away.
		t.stageHist(sp.Stage).ObserveExemplar(sp.Duration.Seconds(), sp.Trace.String())
	}
}

// End records a span that started at start and ends now — the common
// "measure this stage" form.
func (t *Tracer) End(trace TraceID, id, parent SpanID, stage, note string, start time.Time) {
	if t == nil || trace == 0 {
		return
	}
	t.Record(Span{
		Trace: trace, ID: id, Parent: parent,
		Stage: stage, Note: note,
		Start: start, Duration: time.Since(start),
	})
}

// stageHist returns (creating on first use) the stage's exported series.
func (t *Tracer) stageHist(stage string) metrics.Histogram {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	h, ok := t.hists[stage]
	if !ok {
		lbl := metrics.Labels{"component": t.component, "stage": stage}
		for k, v := range t.labels {
			lbl[k] = v
		}
		h = t.reg.Histogram("bf_stage_seconds",
			"Latency decomposition of traced requests by pipeline stage.", lbl, nil)
		t.hists[stage] = h
	}
	return h
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	if t.full {
		out = append(out, t.buf[t.next:]...)
	}
	out = append(out, t.buf[:t.next]...)
	return out
}

// EvictedFor reports how many of a trace's spans the ring has already
// overwritten. A second value of true means the count is exact; false
// means the per-trace map overflowed at some point, so evictions counted
// before the reset are no longer attributable — the trace MAY have lost
// more spans than reported.
func (t *Tracer) EvictedFor(trace TraceID) (int, bool) {
	if t == nil {
		return 0, true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted[trace], t.evictedOther == 0
}

// SpansFor returns the retained spans of one trace, oldest first.
func (t *Tracer) SpansFor(trace TraceID) []Span {
	all := t.Spans()
	out := all[:0]
	for _, sp := range all {
		if sp.Trace == trace {
			out = append(out, sp)
		}
	}
	return out
}
