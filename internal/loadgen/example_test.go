package loadgen_test

import (
	"context"
	"fmt"
	"time"

	"blastfunction/internal/loadgen"
)

// ExampleRun drives a synthetic target with one closed-loop connection at
// a fixed rate, like hey -c 1 -q 50.
func ExampleRun() {
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Connections: 1,
		RatePerSec:  50,
		Duration:    200 * time.Millisecond,
		Do: func(ctx context.Context) error {
			time.Sleep(time.Millisecond) // the simulated request
			return nil
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("errors: %d, completed all sent: %t\n", res.Errors, res.Completed == res.Sent)
	// Output:
	// errors: 0, completed all sent: true
}
