// Package loadgen is the reproduction's `hey` — the HTTP load generator
// driving the paper's multi-function experiments (Table I configurations).
//
// Like hey with -c connections and -q rate, workers are closed loops with
// a per-worker rate limit: a worker sends its next request at the later of
// (a) the previous response arriving and (b) the next slot of its rate
// schedule. With one connection per function — the paper's setup — the
// achieved throughput therefore caps at 1/latency once the target rate
// exceeds what the function can serve, which is exactly the saturation
// behaviour Tables II-IV show.
package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Config parameterizes one load run.
type Config struct {
	// URL is the target endpoint (used by the default HTTP Do).
	URL string
	// Connections is the number of closed-loop workers; the paper uses 1
	// per function.
	Connections int
	// RatePerSec is the aggregate target request rate across workers;
	// zero disables rate limiting (maximum closed-loop pressure).
	RatePerSec float64
	// Duration bounds the run.
	Duration time.Duration
	// Do performs one request; nil selects an HTTP GET of URL. The
	// returned error marks the request failed.
	Do func(ctx context.Context) error
	// OpenLoop decouples arrivals from completions: each worker fires
	// requests on its rate schedule regardless of outstanding responses
	// (bounded by MaxInFlight). The default closed loop matches hey.
	OpenLoop bool
	// MaxInFlight bounds concurrent requests in open-loop mode; zero
	// selects 256.
	MaxInFlight int
}

// Result summarizes a load run.
type Result struct {
	// Sent counts issued requests, Completed the successful ones, Errors
	// the failed ones (Sent = Completed + Errors).
	Sent      int
	Completed int
	Errors    int
	// Elapsed is the observed run length.
	Elapsed time.Duration
	// Throughput is Completed / Elapsed in requests per second.
	Throughput float64
	// Latency statistics over completed requests.
	AvgLatency time.Duration
	MinLatency time.Duration
	MaxLatency time.Duration
	P50Latency time.Duration
	P95Latency time.Duration
	P99Latency time.Duration
}

// Run drives the target according to cfg and reports the results. It
// returns early if ctx is cancelled.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Connections <= 0 {
		cfg.Connections = 1
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive")
	}
	do := cfg.Do
	if do == nil {
		if cfg.URL == "" {
			return nil, fmt.Errorf("loadgen: need URL or Do")
		}
		client := &http.Client{Timeout: 30 * time.Second}
		do = func(ctx context.Context) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.URL, nil)
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode >= 400 {
				return fmt.Errorf("HTTP %d", resp.StatusCode)
			}
			return nil
		}
	}

	if cfg.OpenLoop {
		if cfg.RatePerSec <= 0 {
			return nil, fmt.Errorf("loadgen: open loop requires a rate")
		}
		return runOpenLoop(ctx, cfg, do)
	}
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	perWorkerRate := cfg.RatePerSec / float64(cfg.Connections)

	type workerResult struct {
		sent, completed, errors int
		latencies               []time.Duration
	}
	results := make([]workerResult, cfg.Connections)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Connections; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			var interval time.Duration
			if perWorkerRate > 0 {
				interval = time.Duration(float64(time.Second) / perWorkerRate)
			}
			next := start
			for {
				if interval > 0 {
					now := time.Now()
					if now.Before(next) {
						select {
						case <-runCtx.Done():
							return
						case <-time.After(next.Sub(now)):
						}
					}
					next = next.Add(interval)
					// A saturated worker schedules from now rather than
					// accumulating an unbounded backlog, like hey.
					if behind := time.Since(next); behind > interval {
						next = time.Now()
					}
				}
				select {
				case <-runCtx.Done():
					return
				default:
				}
				res.sent++
				t0 := time.Now()
				err := do(runCtx)
				lat := time.Since(t0)
				if err != nil {
					if runCtx.Err() != nil {
						res.sent-- // aborted by shutdown, not a real request
						return
					}
					res.errors++
					continue
				}
				res.completed++
				res.latencies = append(res.latencies, lat)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := &Result{Elapsed: elapsed}
	var all []time.Duration
	for i := range results {
		out.Sent += results[i].sent
		out.Completed += results[i].completed
		out.Errors += results[i].errors
		all = append(all, results[i].latencies...)
	}
	if elapsed > 0 {
		out.Throughput = float64(out.Completed) / elapsed.Seconds()
	}
	summarize(out, all)
	return out, nil
}

func summarize(out *Result, lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	out.AvgLatency = sum / time.Duration(len(lats))
	out.MinLatency = lats[0]
	out.MaxLatency = lats[len(lats)-1]
	out.P50Latency = percentile(lats, 0.50)
	out.P95Latency = percentile(lats, 0.95)
	out.P99Latency = percentile(lats, 0.99)
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// String renders the result like hey's summary.
func (r *Result) String() string {
	return fmt.Sprintf(
		"requests: %d sent, %d ok, %d errors | %.2f rq/s | latency avg %v p50 %v p95 %v max %v",
		r.Sent, r.Completed, r.Errors, r.Throughput,
		r.AvgLatency.Round(time.Microsecond), r.P50Latency.Round(time.Microsecond),
		r.P95Latency.Round(time.Microsecond), r.MaxLatency.Round(time.Microsecond))
}

// runOpenLoop fires requests on a fixed schedule, independent of response
// times — the arrival process of a public endpoint rather than a polite
// closed-loop client. Latency under overload then grows with queueing
// instead of throttling arrivals.
func runOpenLoop(ctx context.Context, cfg Config, do func(context.Context) error) (*Result, error) {
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 256
	}
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	interval := time.Duration(float64(time.Second) / cfg.RatePerSec)
	sem := make(chan struct{}, maxInFlight)

	var mu sync.Mutex
	out := &Result{}
	var lats []time.Duration
	var wg sync.WaitGroup
	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
loop:
	for {
		select {
		case <-runCtx.Done():
			break loop
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
			default:
				// At the in-flight cap: the request is dropped, counted as
				// an error (an overloaded open-loop target sheds load).
				mu.Lock()
				out.Sent++
				out.Errors++
				mu.Unlock()
				continue
			}
			mu.Lock()
			out.Sent++
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				t0 := time.Now()
				err := do(runCtx)
				lat := time.Since(t0)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if runCtx.Err() != nil {
						out.Sent--
						return
					}
					out.Errors++
					return
				}
				out.Completed++
				lats = append(lats, lat)
			}()
		}
	}
	wg.Wait()
	out.Elapsed = time.Since(start)
	if out.Elapsed > 0 {
		out.Throughput = float64(out.Completed) / out.Elapsed.Seconds()
	}
	summarize(out, lats)
	return out, nil
}
