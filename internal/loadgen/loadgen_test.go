package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRateLimitedOpenLoad(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Config{
		URL:         srv.URL,
		Connections: 2,
		RatePerSec:  100,
		Duration:    500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~50 requests expected; allow wide scheduling slack.
	if res.Completed < 30 || res.Completed > 70 {
		t.Fatalf("completed = %d, want ~50", res.Completed)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Throughput < 60 || res.Throughput > 140 {
		t.Fatalf("throughput = %.1f, want ~100", res.Throughput)
	}
	if res.AvgLatency <= 0 || res.MinLatency > res.MaxLatency {
		t.Fatalf("latency stats inconsistent: %+v", res)
	}
}

func TestClosedLoopSaturation(t *testing.T) {
	// A single connection against a 20ms handler cannot exceed ~50 rq/s
	// regardless of the 500 rq/s target — the paper's saturation regime.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(20 * time.Millisecond)
	}))
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		URL:         srv.URL,
		Connections: 1,
		RatePerSec:  500,
		Duration:    400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput > 60 {
		t.Fatalf("throughput = %.1f, closed loop must cap near 50", res.Throughput)
	}
	if res.AvgLatency < 15*time.Millisecond {
		t.Fatalf("avg latency = %v, want >= 20ms-ish", res.AvgLatency)
	}
}

func TestErrorsCounted(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 0 {
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		URL:         srv.URL,
		Connections: 1,
		RatePerSec:  200,
		Duration:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 || res.Completed == 0 {
		t.Fatalf("expected mixed outcomes: %+v", res)
	}
	if res.Sent != res.Completed+res.Errors {
		t.Fatalf("sent %d != completed %d + errors %d", res.Sent, res.Completed, res.Errors)
	}
}

func TestCustomDoFunc(t *testing.T) {
	var calls atomic.Int64
	res, err := Run(context.Background(), Config{
		Connections: 4,
		Duration:    100 * time.Millisecond,
		Do: func(ctx context.Context) error {
			calls.Add(1)
			time.Sleep(time.Millisecond)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || int64(res.Completed) != calls.Load() {
		t.Fatalf("completed = %d, calls = %d", res.Completed, calls.Load())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{URL: "x", Duration: 0}); err == nil {
		t.Fatal("zero duration must fail")
	}
	if _, err := Run(context.Background(), Config{Duration: time.Second}); err == nil {
		t.Fatal("no target must fail")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, Config{
		Connections: 1,
		Duration:    10 * time.Second,
		Do: func(ctx context.Context) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Millisecond):
				return nil
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not stop the run")
	}
}

func TestPercentiles(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	var r Result
	summarize(&r, lats)
	if r.P50Latency != 50*time.Millisecond {
		t.Fatalf("p50 = %v", r.P50Latency)
	}
	if r.P95Latency != 95*time.Millisecond {
		t.Fatalf("p95 = %v", r.P95Latency)
	}
	if r.MinLatency != time.Millisecond || r.MaxLatency != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", r.MinLatency, r.MaxLatency)
	}
	if r.String() == "" {
		t.Fatal("String must render")
	}
}

func TestResultStringFormat(t *testing.T) {
	r := &Result{Sent: 10, Completed: 9, Errors: 1, Throughput: 45.5,
		AvgLatency: 20 * time.Millisecond}
	s := r.String()
	for _, want := range []string{"10 sent", "9 ok", "1 errors", "45.50 rq/s"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}

func TestOpenLoopMaintainsArrivalRate(t *testing.T) {
	// A slow handler does not throttle open-loop arrivals: sent count
	// tracks the schedule even though each response takes 50ms.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(50 * time.Millisecond)
	}))
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		URL:        srv.URL,
		RatePerSec: 100,
		Duration:   500 * time.Millisecond,
		OpenLoop:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~50 arrivals expected despite 50ms latency (a closed loop with one
	// connection would manage ~10).
	if res.Sent < 30 {
		t.Fatalf("open loop sent only %d", res.Sent)
	}
}

func TestOpenLoopShedsAtInFlightCap(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	done := make(chan *Result, 1)
	go func() {
		res, _ := Run(context.Background(), Config{
			URL:         srv.URL,
			RatePerSec:  200,
			Duration:    300 * time.Millisecond,
			OpenLoop:    true,
			MaxInFlight: 4,
		})
		done <- res
	}()
	time.Sleep(350 * time.Millisecond)
	close(block)
	res := <-done
	if res.Errors == 0 {
		t.Fatal("expected shed requests at the in-flight cap")
	}
}

func TestOpenLoopRequiresRate(t *testing.T) {
	if _, err := Run(context.Background(), Config{
		URL: "http://example.invalid", Duration: time.Second, OpenLoop: true,
	}); err == nil {
		t.Fatal("open loop without rate must fail")
	}
}
