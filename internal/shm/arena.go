package shm

import (
	"fmt"
	"sort"
	"sync"
)

// arenaAlign is the allocation granularity. 64 bytes keeps staging buffers
// cache-line aligned for the single memcpy the shm path performs.
const arenaAlign = 64

// Arena hands out transient byte ranges of a segment to in-flight
// operations: the Remote Library allocates a range per enqueued transfer
// and frees it when the operation's event completes. It is a first-fit
// free-list allocator with coalescing — fragmentation stays bounded
// because allocations are short-lived and similarly sized.
type Arena struct {
	mu   sync.Mutex
	size int64
	free []span // sorted by offset, non-adjacent
}

type span struct{ off, len int64 }

// NewArena manages [0, size).
func NewArena(size int64) *Arena {
	return &Arena{size: size, free: []span{{0, size}}}
}

// Size returns the managed capacity.
func (a *Arena) Size() int64 { return a.size }

// Alloc reserves n bytes and returns the range offset. It fails when no
// contiguous range fits; callers fall back to the inline (gRPC) data path
// in that case, like the paper's library degrades when a shared-memory
// area is unavailable.
func (a *Arena) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("shm: invalid allocation size %d", n)
	}
	need := (n + arenaAlign - 1) / arenaAlign * arenaAlign
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.free {
		if a.free[i].len >= need {
			off := a.free[i].off
			a.free[i].off += need
			a.free[i].len -= need
			if a.free[i].len == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			return off, nil
		}
	}
	// Diagnose the failure in the error itself: distinguishing "truly
	// full" from "fragmented" (free bytes exist but no fragment fits)
	// matters when sizing segments. Computed inline — FreeBytes and
	// Fragments take the lock this path already holds.
	var freeBytes, largest int64
	for _, s := range a.free {
		freeBytes += s.len
		if s.len > largest {
			largest = s.len
		}
	}
	return 0, fmt.Errorf(
		"shm: arena exhausted: %d bytes requested, %d live, %d free in %d fragments (largest %d)",
		n, a.size-freeBytes, freeBytes, len(a.free), largest)
}

// Free returns the range starting at off with the originally requested
// length n to the allocator.
func (a *Arena) Free(off, n int64) {
	if n <= 0 {
		return
	}
	need := (n + arenaAlign - 1) / arenaAlign * arenaAlign
	a.mu.Lock()
	defer a.mu.Unlock()
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= off })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{off, need}
	// Coalesce with the next span, then with the previous one.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].len == a.free[i+1].off {
		a.free[i].len += a.free[i+1].len
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].len == a.free[i].off {
		a.free[i-1].len += a.free[i].len
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// FreeBytes returns the total unallocated capacity (diagnostics/tests).
func (a *Arena) FreeBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total int64
	for _, s := range a.free {
		total += s.len
	}
	return total
}

// Fragments returns the number of free spans (diagnostics/tests).
func (a *Arena) Fragments() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.free)
}
