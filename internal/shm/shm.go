// Package shm implements the shared-memory data path between the Remote
// OpenCL Library and a co-located Device Manager.
//
// The paper's shm transport exists because gRPC costs three extra buffer
// copies plus serialization; with a shared segment the data plane needs
// exactly one copy (kept to preserve OpenCL buffer semantics). Segments
// are plain files under /dev/shm mapped with mmap, which matches the
// paper's deployment: the Registry mounts a shared-memory volume into both
// the function container and the Device Manager container on the same node.
package shm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
)

// DefaultDir is where segments are created. /dev/shm is a tmpfs on every
// Linux distribution, giving page-cache-speed access with a filesystem
// namespace both containers can mount.
const DefaultDir = "/dev/shm"

var segCounter atomic.Uint64

// Segment is a memory-mapped shared file.
type Segment struct {
	path  string
	data  []byte
	owner bool
}

// Create makes a new segment of size bytes in dir (DefaultDir when empty).
// The creator owns the file and removes it on Close.
func Create(dir string, size int64) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("shm: invalid segment size %d", size)
	}
	if dir == "" {
		dir = DefaultDir
	}
	name := fmt.Sprintf("blastfunction-%d-%d", os.Getpid(), segCounter.Add(1))
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("shm: create %s: %w", path, err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("shm: truncate %s: %w", path, err)
	}
	data, err := mmap(f, size)
	f.Close()
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	return &Segment{path: path, data: data, owner: true}, nil
}

// Open maps an existing segment created by a peer process.
func Open(path string, size int64) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("shm: invalid segment size %d", size)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("shm: open %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("shm: stat %s: %w", path, err)
	}
	if st.Size() < size {
		return nil, fmt.Errorf("shm: segment %s is %d bytes, need %d", path, st.Size(), size)
	}
	data, err := mmap(f, size)
	if err != nil {
		return nil, err
	}
	return &Segment{path: path, data: data}, nil
}

func mmap(f *os.File, size int64) ([]byte, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("shm: mmap %s: %w", f.Name(), err)
	}
	return data, nil
}

// Bytes returns the mapped memory. Both sides see each other's writes.
func (s *Segment) Bytes() []byte { return s.data }

// Path returns the segment's filesystem path, shared with the peer through
// the SetupShm control message.
func (s *Segment) Path() string { return s.path }

// Size returns the mapped length.
func (s *Segment) Size() int64 { return int64(len(s.data)) }

// Range returns the subslice [off, off+n) with bounds checking.
func (s *Segment) Range(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(s.data)) {
		return nil, fmt.Errorf("shm: range [%d,%d) outside segment of %d bytes", off, off+n, len(s.data))
	}
	return s.data[off : off+n], nil
}

// Close unmaps the segment; the owner also unlinks the file.
func (s *Segment) Close() error {
	var errs []error
	if s.data != nil {
		if err := syscall.Munmap(s.data); err != nil {
			errs = append(errs, fmt.Errorf("shm: munmap: %w", err))
		}
		s.data = nil
	}
	if s.owner {
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
