package shm

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
	"testing/quick"
)

// segDir uses t.TempDir so tests do not depend on /dev/shm permissions;
// the mapping semantics are identical on any filesystem.
func segDir(t *testing.T) string {
	t.Helper()
	return t.TempDir()
}

func TestSegmentCreateOpenShareData(t *testing.T) {
	dir := segDir(t)
	owner, err := Create(dir, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	peer, err := Open(owner.Path(), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	copy(owner.Bytes()[128:], []byte("written by owner"))
	if got := peer.Bytes()[128:144]; !bytes.Equal(got, []byte("written by owner")) {
		t.Fatalf("peer sees %q", got)
	}
	copy(peer.Bytes()[4096:], []byte("written by peer"))
	if got := owner.Bytes()[4096:4111]; !bytes.Equal(got, []byte("written by peer")) {
		t.Fatalf("owner sees %q", got)
	}
}

func TestSegmentCloseRemovesOwnerFile(t *testing.T) {
	dir := segDir(t)
	owner, err := Create(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	path := owner.Path()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("segment file missing before close: %v", err)
	}
	if err := owner.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("owner close must unlink the file, stat err = %v", err)
	}
}

func TestSegmentOpenValidation(t *testing.T) {
	dir := segDir(t)
	if _, err := Open(dir+"/missing", 4096); err == nil {
		t.Fatal("open of missing segment must fail")
	}
	owner, _ := Create(dir, 4096)
	defer owner.Close()
	if _, err := Open(owner.Path(), 1<<20); err == nil {
		t.Fatal("open larger than the file must fail")
	}
	if _, err := Create(dir, 0); err == nil {
		t.Fatal("zero-size create must fail")
	}
	if _, err := Open(owner.Path(), -1); err == nil {
		t.Fatal("negative open must fail")
	}
}

func TestSegmentRange(t *testing.T) {
	dir := segDir(t)
	s, _ := Create(dir, 1024)
	defer s.Close()
	b, err := s.Range(512, 128)
	if err != nil || len(b) != 128 {
		t.Fatalf("Range = %d bytes, %v", len(b), err)
	}
	for _, bad := range [][2]int64{{-1, 10}, {1000, 100}, {0, -1}, {1025, 0}} {
		if _, err := s.Range(bad[0], bad[1]); err == nil {
			t.Fatalf("Range(%d,%d) must fail", bad[0], bad[1])
		}
	}
}

func TestArenaAllocFree(t *testing.T) {
	a := NewArena(1 << 12)
	off1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if off1 == off2 {
		t.Fatal("overlapping allocations")
	}
	if off1%arenaAlign != 0 || off2%arenaAlign != 0 {
		t.Fatal("allocations must be aligned")
	}
	a.Free(off1, 100)
	a.Free(off2, 100)
	if got := a.FreeBytes(); got != 1<<12 {
		t.Fatalf("free bytes after release = %d, want %d", got, 1<<12)
	}
	if a.Fragments() != 1 {
		t.Fatalf("spans did not coalesce: %d fragments", a.Fragments())
	}
}

func TestArenaExhaustion(t *testing.T) {
	a := NewArena(256)
	if _, err := a.Alloc(512); err == nil {
		t.Fatal("oversized alloc must fail")
	}
	off, err := a.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); err == nil {
		t.Fatal("alloc from empty arena must fail")
	}
	a.Free(off, 256)
	if _, err := a.Alloc(256); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("zero alloc must fail")
	}
}

func TestArenaCoalescingMiddleFree(t *testing.T) {
	a := NewArena(3 * arenaAlign)
	o1, _ := a.Alloc(arenaAlign)
	o2, _ := a.Alloc(arenaAlign)
	o3, _ := a.Alloc(arenaAlign)
	// Free outer spans first, then the middle: all three must merge.
	a.Free(o1, arenaAlign)
	a.Free(o3, arenaAlign)
	if a.Fragments() != 2 {
		t.Fatalf("fragments = %d, want 2", a.Fragments())
	}
	a.Free(o2, arenaAlign)
	if a.Fragments() != 1 {
		t.Fatalf("fragments after middle free = %d, want 1", a.Fragments())
	}
	if _, err := a.Alloc(3 * arenaAlign); err != nil {
		t.Fatalf("full-size alloc after coalesce: %v", err)
	}
}

func TestArenaExhaustionErrorReportsOccupancy(t *testing.T) {
	a := NewArena(4 * arenaAlign)
	o1, _ := a.Alloc(arenaAlign)
	o2, _ := a.Alloc(arenaAlign)
	a.Alloc(arenaAlign)
	a.Alloc(arenaAlign)
	a.Free(o1, arenaAlign)
	// Live 2 spans, free 2*arenaAlign in 2 fragments after freeing o2 as
	// well — but ask for more than the largest fragment so Alloc fails on
	// fragmentation, not raw capacity.
	a.Free(o2, arenaAlign)
	_, err := a.Alloc(3 * arenaAlign)
	if err == nil {
		t.Fatal("fragmented alloc must fail")
	}
	msg := err.Error()
	for _, want := range []string{
		fmt.Sprintf("%d bytes requested", 3*arenaAlign),
		fmt.Sprintf("%d live", 2*arenaAlign),
		fmt.Sprintf("%d free", 2*arenaAlign),
		"fragments",
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("exhaustion error %q missing %q", msg, want)
		}
	}
}

func TestArenaCoalescingReuseAfterInterleavedFrees(t *testing.T) {
	// Alternating allocations are released in an interleaved order; once
	// every span is back the arena must serve one allocation spanning the
	// whole capacity — pinning that coalescing actually restores
	// contiguity, not just the free-byte count.
	const n = 8
	a := NewArena(n * arenaAlign)
	offs := make([]int64, n)
	for i := range offs {
		o, err := a.Alloc(arenaAlign)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		offs[i] = o
	}
	for _, i := range []int{1, 5, 3, 7, 0, 4, 6, 2} {
		a.Free(offs[i], arenaAlign)
	}
	if got := a.Fragments(); got != 1 {
		t.Fatalf("fragments after interleaved frees = %d, want 1", got)
	}
	if _, err := a.Alloc(n * arenaAlign); err != nil {
		t.Fatalf("full-capacity alloc after interleaved frees: %v", err)
	}
}

func TestArenaPropertyNoOverlapAndConservation(t *testing.T) {
	// Random alloc/free sequences: live allocations never overlap and
	// capacity is conserved.
	check := func(ops []uint16) bool {
		const capacity = 1 << 14
		a := NewArena(capacity)
		type alloc struct{ off, n int64 }
		var live []alloc
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 { // two thirds allocs
				n := int64(op%1024 + 1)
				off, err := a.Alloc(n)
				if err != nil {
					continue
				}
				for _, l := range live {
					lEnd := (l.n + arenaAlign - 1) / arenaAlign * arenaAlign
					nEnd := (n + arenaAlign - 1) / arenaAlign * arenaAlign
					if off < l.off+lEnd && l.off < off+nEnd {
						return false // overlap
					}
				}
				live = append(live, alloc{off, n})
			} else {
				i := int(op) % len(live)
				a.Free(live[i].off, live[i].n)
				live = append(live[:i], live[i+1:]...)
			}
		}
		for _, l := range live {
			a.Free(l.off, l.n)
		}
		return a.FreeBytes() == capacity && a.Fragments() == 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDevShmAvailable(t *testing.T) {
	// The deployment path uses /dev/shm; verify it works where available.
	if _, err := os.Stat(DefaultDir); err != nil {
		t.Skipf("%s unavailable: %v", DefaultDir, err)
	}
	s, err := Create("", 4096)
	if err != nil {
		t.Skipf("cannot create in %s: %v", DefaultDir, err)
	}
	defer s.Close()
	copy(s.Bytes(), []byte("dev-shm"))
	if !bytes.Equal(s.Bytes()[:7], []byte("dev-shm")) {
		t.Fatal("mapping not writable")
	}
}
