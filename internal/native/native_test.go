package native

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"blastfunction/internal/accel"
	"blastfunction/internal/fpga"
	"blastfunction/internal/model"
	"blastfunction/internal/ocl"
)

func newBoard() *fpga.Board {
	return fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
}

func open(t *testing.T, c *Client) (ocl.Context, ocl.Device, ocl.CommandQueue) {
	t.Helper()
	ps, err := c.Platforms()
	if err != nil {
		t.Fatal(err)
	}
	devs, err := ps[0].Devices(ocl.DeviceTypeAccelerator)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := c.CreateContext(devs[:1])
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateCommandQueue(devs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, devs[0], q
}

func TestDiscovery(t *testing.T) {
	c := New(newBoard(), newBoard())
	ps, err := c.Platforms()
	if err != nil || len(ps) != 1 {
		t.Fatalf("platforms = %v, %v", ps, err)
	}
	devs, err := ps[0].Devices(ocl.DeviceTypeAccelerator)
	if err != nil || len(devs) != 2 {
		t.Fatalf("devices = %v, %v", devs, err)
	}
	if devs[0].Vendor() != "Intel(R) Corporation" {
		t.Fatalf("vendor = %q", devs[0].Vendor())
	}
	if _, err := ps[0].Devices(ocl.DeviceTypeCPU); !errors.Is(err, ocl.ErrDeviceNotFound) {
		t.Fatalf("CPU query err = %v", err)
	}
	c.Close()
	if _, err := c.Platforms(); err == nil {
		t.Fatal("closed client must fail")
	}
}

func TestContextRules(t *testing.T) {
	c := New(newBoard(), newBoard())
	ps, _ := c.Platforms()
	devs, _ := ps[0].Devices(ocl.DeviceTypeAll)
	if _, err := c.CreateContext(devs); !errors.Is(err, ocl.ErrInvalidDevice) {
		t.Fatalf("multi-device context err = %v", err)
	}
	if _, err := c.CreateContext(nil); err == nil {
		t.Fatal("empty context must fail")
	}
	ctx, err := c.CreateContext(devs[:1])
	if err != nil {
		t.Fatal(err)
	}
	// A queue for the other board's device must be rejected.
	if _, err := ctx.CreateCommandQueue(devs[1], 0); !errors.Is(err, ocl.ErrInvalidDevice) {
		t.Fatalf("cross-board queue err = %v", err)
	}
}

func TestInOrderExecutionAcrossOps(t *testing.T) {
	c := New(newBoard())
	ctx, dev, q := open(t, c)
	prog, err := ctx.CreateProgramWithBinary(dev, accel.LoopbackBitstream().Binary())
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("copy")
	in, _ := ctx.CreateBuffer(ocl.MemReadOnly, 64, nil)
	out, _ := ctx.CreateBuffer(ocl.MemWriteOnly, 64, nil)
	k.SetArg(0, in)
	k.SetArg(1, out)
	k.SetArg(2, int32(64))
	// Queue many generations; in-order execution means the final read
	// observes the last write.
	var last []byte
	dst := make([]byte, 64)
	for g := byte(0); g < 10; g++ {
		last = bytes.Repeat([]byte{g}, 64)
		if _, err := q.EnqueueWriteBuffer(in, false, 0, last, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueTask(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.EnqueueReadBuffer(out, true, 0, dst, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, last) {
		t.Fatal("in-order execution violated")
	}
}

func TestKernelSnapshotSemantics(t *testing.T) {
	// Changing an argument after enqueue must not affect the in-flight
	// launch (clSetKernelArg snapshot semantics).
	c := New(newBoard())
	ctx, dev, q := open(t, c)
	prog, _ := ctx.CreateProgramWithBinary(dev, accel.LoopbackBitstream().Binary())
	prog.Build("")
	k, _ := prog.CreateKernel("copy")
	in, _ := ctx.CreateBuffer(ocl.MemReadOnly, 64, []byte(bytes.Repeat([]byte{7}, 64)))
	out1, _ := ctx.CreateBuffer(ocl.MemWriteOnly, 64, nil)
	out2, _ := ctx.CreateBuffer(ocl.MemWriteOnly, 64, nil)
	k.SetArg(0, in)
	k.SetArg(1, out1)
	k.SetArg(2, int32(64))
	ev, err := q.EnqueueTask(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.SetArg(1, out2) // must not redirect the in-flight launch
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	if _, err := q.EnqueueReadBuffer(out1, true, 0, dst, nil); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 7 {
		t.Fatal("snapshot semantics violated: launch used the later argument")
	}
}

func TestReleaseSemantics(t *testing.T) {
	c := New(newBoard())
	ctx, _, q := open(t, c)
	buf, _ := ctx.CreateBuffer(ocl.MemReadWrite, 1<<10, nil)
	if err := buf.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueWriteBuffer(buf, true, 0, make([]byte, 16), nil); err == nil {
		t.Fatal("write to released buffer must fail")
	}
	// Release after a failed command reports that command's error
	// (stricter than clFinish, which swallows it).
	if err := q.Release(); !errors.Is(err, ocl.ErrInvalidMemObject) {
		t.Fatalf("release after failure err = %v", err)
	}
	if err := q.Release(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := q.EnqueueMarker(); !errors.Is(err, ocl.ErrInvalidCommandQueue) {
		t.Fatalf("enqueue on released queue err = %v", err)
	}
	// A clean queue releases without error.
	q2, err := ctx.CreateCommandQueue(ctx.Devices()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := q2.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentQueues(t *testing.T) {
	c := New(newBoard())
	ctx, dev, _ := open(t, c)
	prog, _ := ctx.CreateProgramWithBinary(dev, accel.LoopbackBitstream().Binary())
	prog.Build("")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		q, err := ctx.CreateCommandQueue(dev, 0)
		if err != nil {
			t.Fatal(err)
		}
		k, _ := prog.CreateKernel("copy")
		in, _ := ctx.CreateBuffer(ocl.MemReadOnly, 128, nil)
		out, _ := ctx.CreateBuffer(ocl.MemWriteOnly, 128, nil)
		k.SetArg(0, in)
		k.SetArg(1, out)
		k.SetArg(2, int32(128))
		wg.Add(1)
		go func(w int, q ocl.CommandQueue, in, out ocl.Buffer, k ocl.Kernel) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w + 1)}, 128)
			dst := make([]byte, 128)
			for i := 0; i < 10; i++ {
				q.EnqueueWriteBuffer(in, false, 0, payload, nil)
				q.EnqueueTask(k, nil)
				if _, err := q.EnqueueReadBuffer(out, true, 0, dst, nil); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if !bytes.Equal(dst, payload) {
					t.Errorf("worker %d corrupted", w)
					return
				}
			}
		}(w, q, in, out, k)
	}
	wg.Wait()
}

func TestContextReleaseDrainsQueues(t *testing.T) {
	c := New(newBoard())
	ctx, _, q := open(t, c)
	buf, _ := ctx.CreateBuffer(ocl.MemReadWrite, 1<<16, nil)
	for i := 0; i < 8; i++ {
		if _, err := q.EnqueueWriteBuffer(buf, false, 0, make([]byte, 1<<16), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctx.Release(); err != nil {
		t.Fatal(err)
	}
}
