// Package native implements the baseline OpenCL runtime of the paper's
// evaluation: direct, exclusive access to a board over PCIe passthrough,
// with no Device Manager, no sharing and no extra data copies.
//
// It serves two roles: it is the "Native" series every experiment compares
// BlastFunction against, and it doubles as a reference implementation of
// the ocl API semantics that the remote library must match (the
// transparency property: the same host code runs on either).
package native

import (
	"sync"

	"blastfunction/internal/fpga"
	"blastfunction/internal/ocl"
)

// Client implements ocl.Client over local boards.
type Client struct {
	boards []*fpga.Board

	mu     sync.Mutex
	closed bool
}

// New creates a native runtime owning the given boards.
func New(boards ...*fpga.Board) *Client {
	return &Client{boards: boards}
}

// Platforms implements ocl.Client.
func (c *Client) Platforms() ([]ocl.Platform, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ocl.Errf(ocl.ErrInvalidOperation, "client closed")
	}
	return []ocl.Platform{&platform{client: c}}, nil
}

// CreateContext implements ocl.Client. A context owns exactly one board,
// matching the Intel FPGA runtime deployment the paper measures.
func (c *Client) CreateContext(devices []ocl.Device) (ocl.Context, error) {
	if len(devices) != 1 {
		return nil, ocl.Errf(ocl.ErrInvalidDevice, "native contexts hold exactly one device")
	}
	d, ok := devices[0].(*device)
	if !ok {
		return nil, ocl.Errf(ocl.ErrInvalidDevice, "foreign device %T", devices[0])
	}
	return &context{board: d.board, devices: []ocl.Device{d}}, nil
}

// Close implements ocl.Client.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

type platform struct{ client *Client }

// Name implements ocl.Platform.
func (p *platform) Name() string { return "Intel(R) FPGA SDK for OpenCL(TM) (native simulation)" }

// Vendor implements ocl.Platform.
func (p *platform) Vendor() string { return "Intel(R) Corporation" }

// Version implements ocl.Platform.
func (p *platform) Version() string { return "OpenCL 1.2 native-sim" }

// Devices implements ocl.Platform.
func (p *platform) Devices(typ ocl.DeviceType) ([]ocl.Device, error) {
	if typ&(ocl.DeviceTypeAccelerator|ocl.DeviceTypeDefault) == 0 && typ != ocl.DeviceTypeAll {
		return nil, ocl.Errf(ocl.ErrDeviceNotFound, "platform has only accelerator devices")
	}
	devs := make([]ocl.Device, 0, len(p.client.boards))
	for _, b := range p.client.boards {
		devs = append(devs, &device{board: b})
	}
	return devs, nil
}

type device struct{ board *fpga.Board }

// Name implements ocl.Device.
func (d *device) Name() string { return d.board.Config().Name }

// Vendor implements ocl.Device.
func (d *device) Vendor() string { return d.board.Config().Vendor }

// Type implements ocl.Device.
func (d *device) Type() ocl.DeviceType { return ocl.DeviceTypeAccelerator }

// GlobalMemSize implements ocl.Device.
func (d *device) GlobalMemSize() int64 { return d.board.Config().MemBytes }

// Available implements ocl.Device.
func (d *device) Available() bool { return true }

// context implements ocl.Context.
type context struct {
	board   *fpga.Board
	devices []ocl.Device

	mu     sync.Mutex
	queues []*commandQueue
}

// Devices implements ocl.Context.
func (c *context) Devices() []ocl.Device { return c.devices }

// CreateCommandQueue implements ocl.Context. Each queue runs a dispatcher
// goroutine that executes commands in order against the board, like the
// vendor driver's per-queue submission thread.
func (c *context) CreateCommandQueue(d ocl.Device, props ocl.QueueProps) (ocl.CommandQueue, error) {
	nd, ok := d.(*device)
	if !ok || nd.board != c.board {
		return nil, ocl.Errf(ocl.ErrInvalidDevice, "device does not belong to this context")
	}
	q := &commandQueue{ctx: c, work: make(chan func(), 256)}
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		for fn := range q.work {
			fn()
		}
	}()
	c.mu.Lock()
	c.queues = append(c.queues, q)
	c.mu.Unlock()
	return q, nil
}

// CreateBuffer implements ocl.Context.
func (c *context) CreateBuffer(flags ocl.MemFlags, size int, hostData []byte) (ocl.Buffer, error) {
	if !flags.Valid() {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "buffer flags %#x", uint32(flags))
	}
	if size <= 0 || (hostData != nil && len(hostData) > size) {
		return nil, ocl.Errf(ocl.ErrInvalidBufferSize, "size %d, init %d", size, len(hostData))
	}
	id, err := c.board.Alloc(int64(size))
	if err != nil {
		return nil, err
	}
	if len(hostData) > 0 {
		if _, err := c.board.Write(id, 0, hostData); err != nil {
			c.board.Free(id)
			return nil, err
		}
	}
	return &buffer{ctx: c, boardID: id, size: size, flags: flags}, nil
}

// CreateProgramWithBinary implements ocl.Context.
func (c *context) CreateProgramWithBinary(d ocl.Device, binary []byte) (ocl.Program, error) {
	nd, ok := d.(*device)
	if !ok || nd.board != c.board {
		return nil, ocl.Errf(ocl.ErrInvalidDevice, "device does not belong to this context")
	}
	bs, err := c.board.Catalog().Parse(binary)
	if err != nil {
		return nil, err
	}
	return &program{ctx: c, bs: bs, binary: binary}, nil
}

// Release implements ocl.Context.
func (c *context) Release() error {
	c.mu.Lock()
	queues := append([]*commandQueue(nil), c.queues...)
	c.queues = nil
	c.mu.Unlock()
	for _, q := range queues {
		q.Release()
	}
	return nil
}

// buffer implements ocl.Buffer.
type buffer struct {
	ctx     *context
	boardID uint64
	size    int
	flags   ocl.MemFlags
}

// Size implements ocl.Buffer.
func (b *buffer) Size() int { return b.size }

// Flags implements ocl.Buffer.
func (b *buffer) Flags() ocl.MemFlags { return b.flags }

// Release implements ocl.Buffer.
func (b *buffer) Release() error { return b.ctx.board.Free(b.boardID) }

// program implements ocl.Program.
type program struct {
	ctx    *context
	bs     *fpga.Bitstream
	binary []byte
}

// Build implements ocl.Program: it programs the board.
func (p *program) Build(options string) error {
	_, err := p.ctx.board.Configure(p.binary)
	return err
}

// KernelNames implements ocl.Program.
func (p *program) KernelNames() []string { return p.bs.KernelNames() }

// CreateKernel implements ocl.Program.
func (p *program) CreateKernel(name string) (ocl.Kernel, error) {
	spec, err := p.bs.Kernel(name)
	if err != nil {
		return nil, err
	}
	return &kernel{
		ctx:  p.ctx,
		name: name,
		args: make([]ocl.Arg, spec.NumArgs),
		set:  make([]bool, spec.NumArgs),
	}, nil
}

// Release implements ocl.Program.
func (p *program) Release() error { return nil }

// kernel implements ocl.Kernel.
type kernel struct {
	ctx  *context
	name string

	mu   sync.Mutex
	args []ocl.Arg
	set  []bool
}

// Name implements ocl.Kernel.
func (k *kernel) Name() string { return k.name }

// SetArg implements ocl.Kernel.
func (k *kernel) SetArg(i int, value any) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if i < 0 || i >= len(k.args) {
		return ocl.Errf(ocl.ErrInvalidArgIndex, "kernel %q has %d args, index %d", k.name, len(k.args), i)
	}
	if b, ok := value.(ocl.Buffer); ok {
		nb, ok := b.(*buffer)
		if !ok || nb.ctx != k.ctx {
			return ocl.Errf(ocl.ErrInvalidMemObject, "buffer from a different context")
		}
		k.args[i] = ocl.BufferArg(nb.boardID)
	} else {
		a, err := ocl.PackArg(value)
		if err != nil {
			return err
		}
		k.args[i] = a
	}
	k.set[i] = true
	return nil
}

// snapshot captures the bound arguments, failing on unset ones.
func (k *kernel) snapshot() ([]ocl.Arg, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for i, set := range k.set {
		if !set {
			return nil, ocl.Errf(ocl.ErrInvalidKernelArgs, "kernel %q: argument %d not set", k.name, i)
		}
	}
	return append([]ocl.Arg(nil), k.args...), nil
}

// Release implements ocl.Kernel.
func (k *kernel) Release() error { return nil }

// commandQueue implements ocl.CommandQueue with a per-queue dispatcher.
type commandQueue struct {
	ctx  *context
	work chan func()
	wg   sync.WaitGroup

	mu       sync.Mutex
	events   []*ocl.BaseEvent
	released bool
}

func (q *commandQueue) dispatch(cmd ocl.CommandType, run func(ev *ocl.BaseEvent)) (*ocl.BaseEvent, error) {
	ev := ocl.NewEvent(cmd)
	q.mu.Lock()
	if q.released {
		q.mu.Unlock()
		return nil, ocl.Errf(ocl.ErrInvalidCommandQueue, "queue released")
	}
	q.events = append(q.events, ev)
	q.mu.Unlock()
	q.work <- func() {
		ev.SetStatus(ocl.Running)
		run(ev)
	}
	return ev, nil
}

// EnqueueWriteBuffer implements ocl.CommandQueue.
func (q *commandQueue) EnqueueWriteBuffer(b ocl.Buffer, blocking bool, offset int, data []byte, waitList []ocl.Event) (ocl.Event, error) {
	nb, ok := b.(*buffer)
	if !ok || nb.ctx != q.ctx {
		return nil, ocl.Errf(ocl.ErrInvalidMemObject, "buffer from a different context")
	}
	if offset < 0 || offset+len(data) > nb.size {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "write range")
	}
	if err := ocl.WaitForEvents(waitList...); err != nil {
		return nil, err
	}
	// Non-blocking writes require the caller to keep data stable until
	// completion (OpenCL semantics); the dispatcher uses it directly —
	// zero extra copies, the defining property of the native baseline.
	ev, err := q.dispatch(ocl.CommandWriteBuffer, func(ev *ocl.BaseEvent) {
		d, err := q.ctx.board.Write(nb.boardID, int64(offset), data)
		if err != nil {
			ev.Fail(err)
			return
		}
		ev.SetDeviceTime(d)
		ev.Complete()
	})
	if err != nil {
		return nil, err
	}
	if blocking {
		if err := ev.Wait(); err != nil {
			return ev, err
		}
	}
	return ev, nil
}

// EnqueueReadBuffer implements ocl.CommandQueue.
func (q *commandQueue) EnqueueReadBuffer(b ocl.Buffer, blocking bool, offset int, dst []byte, waitList []ocl.Event) (ocl.Event, error) {
	nb, ok := b.(*buffer)
	if !ok || nb.ctx != q.ctx {
		return nil, ocl.Errf(ocl.ErrInvalidMemObject, "buffer from a different context")
	}
	if offset < 0 || offset+len(dst) > nb.size {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "read range")
	}
	if err := ocl.WaitForEvents(waitList...); err != nil {
		return nil, err
	}
	ev, err := q.dispatch(ocl.CommandReadBuffer, func(ev *ocl.BaseEvent) {
		d, err := q.ctx.board.Read(nb.boardID, int64(offset), dst)
		if err != nil {
			ev.Fail(err)
			return
		}
		ev.SetDeviceTime(d)
		ev.Complete()
	})
	if err != nil {
		return nil, err
	}
	if blocking {
		if err := ev.Wait(); err != nil {
			return ev, err
		}
	}
	return ev, nil
}

// EnqueueCopyBuffer implements ocl.CommandQueue: a device-to-device move
// through the board's DDR, never touching host memory.
func (q *commandQueue) EnqueueCopyBuffer(src, dst ocl.Buffer, srcOffset, dstOffset, n int, waitList []ocl.Event) (ocl.Event, error) {
	ns, ok := src.(*buffer)
	if !ok || ns.ctx != q.ctx {
		return nil, ocl.Errf(ocl.ErrInvalidMemObject, "src buffer from a different context")
	}
	nd, ok := dst.(*buffer)
	if !ok || nd.ctx != q.ctx {
		return nil, ocl.Errf(ocl.ErrInvalidMemObject, "dst buffer from a different context")
	}
	if n < 0 || srcOffset < 0 || srcOffset+n > ns.size || dstOffset < 0 || dstOffset+n > nd.size {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "copy range")
	}
	if err := ocl.WaitForEvents(waitList...); err != nil {
		return nil, err
	}
	return q.dispatch(ocl.CommandCopyBuffer, func(ev *ocl.BaseEvent) {
		d, err := q.ctx.board.Copy(ns.boardID, nd.boardID, int64(srcOffset), int64(dstOffset), int64(n))
		if err != nil {
			ev.Fail(err)
			return
		}
		ev.SetDeviceTime(d)
		ev.Complete()
	})
}

// EnqueueNDRangeKernel implements ocl.CommandQueue.
func (q *commandQueue) EnqueueNDRangeKernel(k ocl.Kernel, global, local []int, waitList []ocl.Event) (ocl.Event, error) {
	nk, ok := k.(*kernel)
	if !ok || nk.ctx != q.ctx {
		return nil, ocl.Errf(ocl.ErrInvalidKernel, "kernel from a different context")
	}
	args, err := nk.snapshot()
	if err != nil {
		return nil, err
	}
	if err := ocl.WaitForEvents(waitList...); err != nil {
		return nil, err
	}
	return q.dispatch(ocl.CommandNDRangeKernel, func(ev *ocl.BaseEvent) {
		d, err := q.ctx.board.Run(nk.name, args, global)
		if err != nil {
			ev.Fail(err)
			return
		}
		ev.SetDeviceTime(d)
		ev.Complete()
	})
}

// EnqueueTask implements ocl.CommandQueue.
func (q *commandQueue) EnqueueTask(k ocl.Kernel, waitList []ocl.Event) (ocl.Event, error) {
	return q.EnqueueNDRangeKernel(k, []int{1}, nil, waitList)
}

// EnqueueMarker implements ocl.CommandQueue.
func (q *commandQueue) EnqueueMarker() (ocl.Event, error) {
	return q.dispatch(ocl.CommandMarker, func(ev *ocl.BaseEvent) { ev.Complete() })
}

// EnqueueBarrier implements ocl.CommandQueue: the per-queue dispatcher is
// already strictly in order, so the barrier is a sequencing no-op.
func (q *commandQueue) EnqueueBarrier() error { return nil }

// Flush implements ocl.CommandQueue: commands are submitted eagerly.
func (q *commandQueue) Flush() error { return nil }

// Finish implements ocl.CommandQueue.
func (q *commandQueue) Finish() error {
	q.mu.Lock()
	snapshot := append([]*ocl.BaseEvent(nil), q.events...)
	q.mu.Unlock()
	var firstErr error
	for _, ev := range snapshot {
		if err := ev.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	q.mu.Lock()
	kept := q.events[:0]
	for _, ev := range q.events {
		if !ev.Status().Done() {
			kept = append(kept, ev)
		}
	}
	q.events = kept
	q.mu.Unlock()
	return firstErr
}

// Release implements ocl.CommandQueue.
func (q *commandQueue) Release() error {
	q.mu.Lock()
	if q.released {
		q.mu.Unlock()
		return nil
	}
	q.released = true
	q.mu.Unlock()
	err := q.Finish()
	close(q.work)
	q.wg.Wait()
	return err
}

// Compile-time checks: the native runtime implements the full ocl API
// surface, the transparency contract shared with the remote library.
var (
	_ ocl.Client       = (*Client)(nil)
	_ ocl.Platform     = (*platform)(nil)
	_ ocl.Device       = (*device)(nil)
	_ ocl.Context      = (*context)(nil)
	_ ocl.Buffer       = (*buffer)(nil)
	_ ocl.Program      = (*program)(nil)
	_ ocl.Kernel       = (*kernel)(nil)
	_ ocl.CommandQueue = (*commandQueue)(nil)
)
