package manager

import (
	"encoding/json"
	"net/http"
	"time"

	"blastfunction/internal/sched"
)

// SchedStats is the manager's scheduling snapshot: the queue's discipline
// and counters joined with the per-tenant device-time occupancy the queue
// itself cannot see.
type SchedStats struct {
	Discipline sched.Discipline  `json:"discipline"`
	Depth      int               `json:"depth"`
	Pushed     uint64            `json:"pushed"`
	Popped     uint64            `json:"popped"`
	Removed    uint64            `json:"removed"`
	Tenants    []SchedTenantView `json:"tenants"`
}

// SchedTenantView is one tenant's scheduling state.
type SchedTenantView struct {
	Tenant  string `json:"tenant"`
	Weight  int    `json:"weight"`
	Depth   int    `json:"depth"`
	Popped  uint64 `json:"popped"`
	Removed uint64 `json:"removed,omitempty"`
	// WaitTotal and MaxWait aggregate queue wait over the tenant's
	// executed tasks.
	WaitTotal time.Duration `json:"wait_total_ns"`
	MaxWait   time.Duration `json:"max_wait_ns"`
	// DeviceTime is the tenant's cumulative modelled board occupancy;
	// OccupancyShare is its fraction of the board total — the quantity the
	// fair disciplines equalize per unit weight.
	DeviceTime     time.Duration `json:"device_ns"`
	OccupancyShare float64       `json:"occupancy_share"`
}

// SchedStats snapshots the scheduling state for diagnostics.
func (m *Manager) SchedStats() SchedStats {
	qs := m.queue.Stats()
	out := SchedStats{
		Discipline: qs.Discipline,
		Depth:      qs.Depth,
		Pushed:     qs.Pushed,
		Popped:     qs.Popped,
		Removed:    qs.Removed,
	}
	m.tmu.Lock()
	device := make(map[string]time.Duration, len(m.tenants))
	var total time.Duration
	for name, tm := range m.tenants {
		d := time.Duration(tm.deviceNS.Load())
		device[name] = d
		total += d
	}
	m.tmu.Unlock()
	for _, ts := range qs.Tenants {
		v := SchedTenantView{
			Tenant:     ts.Tenant,
			Weight:     ts.Weight,
			Depth:      ts.Depth,
			Popped:     ts.Popped,
			Removed:    ts.Removed,
			WaitTotal:  ts.WaitTotal,
			MaxWait:    ts.MaxWait,
			DeviceTime: device[ts.Tenant],
		}
		if total > 0 {
			v.OccupancyShare = float64(v.DeviceTime) / float64(total)
		}
		out.Tenants = append(out.Tenants, v)
		delete(device, ts.Tenant)
	}
	return out
}

// SchedStatsHandler serves the scheduling snapshot as JSON, for
// blastctl-style per-tenant fairness inspection.
func (m *Manager) SchedStatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(m.SchedStats())
	})
}
