package manager_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/manager"
	"blastfunction/internal/ocl"
	"blastfunction/internal/remote"
)

// Integration tests for the data-plane reuse layer: the content-addressed
// buffer cache, kernel memoization, and zero-copy chaining, all exercised
// through real clients over real TCP.

// dialReuse is dialRig with control over the client's content-cache knob.
func dialReuse(t *testing.T, rig *testRig, name string, disableCache bool) *remote.Client {
	t.Helper()
	client, err := remote.Dial(remote.Config{
		ClientName:          name,
		Managers:            []string{rig.addr},
		Transport:           remote.TransportGRPC,
		DisableContentCache: disableCache,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// weights builds a deterministic CNN-weights-like payload.
func weights(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*31 + 7)
	}
	return p
}

func TestContentCacheSharesUploadsAcrossSessions(t *testing.T) {
	rig := newRig(t, manager.Config{})
	const size = 64 << 10
	payload := weights(size)

	base := rig.board.Stats().BytesIn
	cA := dialReuse(t, rig, "reuse-a", false)
	ctxA, _, qA := openDevice(t, cA)
	bufA, err := ctxA.CreateBuffer(ocl.MemReadOnly, size, payload)
	if err != nil {
		t.Fatal(err)
	}
	afterA := rig.board.Stats().BytesIn
	if got := afterA - base; got != size {
		t.Fatalf("first create moved %d bytes to the board, want %d", got, size)
	}

	// A second session with the same content: the create must be
	// metadata-only — zero payload bytes reach the board.
	cB := dialReuse(t, rig, "reuse-b", false)
	ctxB, devB, qB := openDevice(t, cB)
	bufB, err := ctxB.CreateBuffer(ocl.MemReadOnly, size, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got := rig.board.Stats().BytesIn - afterA; got != 0 {
		t.Fatalf("repeated create moved %d bytes to the board, want 0", got)
	}
	st := rig.mgr.CacheStats()
	if st.BufferCache.Hits != 1 || st.BufferCache.BytesSaved != size {
		t.Fatalf("cache stats = %+v, want 1 hit saving %d bytes", st.BufferCache, size)
	}
	// The hit/miss counters are on the /metrics surface too.
	text := rig.mgr.Metrics().Render()
	for _, want := range []string{
		`bf_bufcache_hits_total{device="fpga0",node="testnode"} 1`,
		`bf_bufcache_misses_total{device="fpga0",node="testnode"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// The shared handle must behave like a private one: kernels read the
	// cached bytes.
	k := buildLoopback(t, ctxB, devB)
	out, err := ctxB.CreateBuffer(ocl.MemWriteOnly, size, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.SetArg(0, bufB)
	k.SetArg(1, out)
	k.SetArg(2, int32(size))
	if _, err := qB.EnqueueTask(k, nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if _, err := qB.EnqueueReadBuffer(out, true, 0, got, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("kernel did not see the cached content")
	}

	// Shared handles are immutable: writes are rejected with a typed
	// error on both sessions' handles.
	if _, err := qA.EnqueueWriteBuffer(bufA, true, 0, []byte{1}, nil); !errors.Is(err, ocl.ErrInvalidOperation) {
		t.Fatalf("write to shared buffer err = %v, want ErrInvalidOperation", err)
	}
	if _, err := qB.EnqueueWriteBuffer(bufB, true, 0, []byte{1}, nil); !errors.Is(err, ocl.ErrInvalidOperation) {
		t.Fatalf("write to shared buffer err = %v, want ErrInvalidOperation", err)
	}
}

func TestCacheStatsEndpoint(t *testing.T) {
	rig := newRig(t, manager.Config{MemoizeKernels: true})
	c := dialReuse(t, rig, "cache-http", false)
	ctx, _, _ := openDevice(t, c)
	const size = 4 << 10
	if _, err := ctx.CreateBuffer(ocl.MemReadOnly, size, weights(size)); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	rig.mgr.CacheStatsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/cache", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var got struct {
		BufferCache struct {
			Entries       int   `json:"entries"`
			ResidentBytes int64 `json:"resident_bytes"`
		} `json:"buffer_cache"`
		MemoEnabled bool `json:"memo_enabled"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if got.BufferCache.Entries != 1 || got.BufferCache.ResidentBytes != size || !got.MemoEnabled {
		t.Fatalf("snapshot = %+v, want 1 entry / %d bytes / memo on", got, size)
	}
}

func TestContentCacheEntrySurvivesRelease(t *testing.T) {
	rig := newRig(t, manager.Config{})
	const size = 16 << 10
	payload := weights(size)
	c := dialReuse(t, rig, "reuse-rel", false)
	ctx, _, _ := openDevice(t, c)

	buf, err := ctx.CreateBuffer(ocl.MemReadOnly, size, payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Release(); err != nil {
		t.Fatal(err)
	}
	// The entry stays resident at zero references — that IS the reuse.
	// A later create by the same content must still hit.
	afterRelease := rig.board.Stats().BytesIn
	if _, err := ctx.CreateBuffer(ocl.MemReadOnly, size, payload); err != nil {
		t.Fatal(err)
	}
	if got := rig.board.Stats().BytesIn - afterRelease; got != 0 {
		t.Fatalf("create after release moved %d bytes, want 0 (cache hit)", got)
	}
	st := rig.mgr.CacheStats().BufferCache
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

func TestContentCacheDisabledManagerStaysCorrect(t *testing.T) {
	// A manager with the cache disabled must answer probes "miss" and
	// serve hashed uploads as plain private buffers — never hand out an
	// uninitialized buffer for a probe.
	rig := newRig(t, manager.Config{BufferCacheBytes: -1})
	const size = 8 << 10
	payload := weights(size)
	c := dialReuse(t, rig, "reuse-nocache", false)
	ctx, dev, q := openDevice(t, c)

	in, err := ctx.CreateBuffer(ocl.MemReadOnly, size, payload)
	if err != nil {
		t.Fatal(err)
	}
	k := buildLoopback(t, ctx, dev)
	out, _ := ctx.CreateBuffer(ocl.MemWriteOnly, size, nil)
	k.SetArg(0, in)
	k.SetArg(1, out)
	k.SetArg(2, int32(size))
	if _, err := q.EnqueueTask(k, nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if _, err := q.EnqueueReadBuffer(out, true, 0, got, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("content lost when the manager cache is disabled")
	}
}

func TestContentCacheClientOptOutUploadsEveryTime(t *testing.T) {
	rig := newRig(t, manager.Config{})
	const size = 8 << 10
	payload := weights(size)
	base := rig.board.Stats().BytesIn
	for i, name := range []string{"optout-1", "optout-2"} {
		c := dialReuse(t, rig, name, true)
		ctx, _, _ := openDevice(t, c)
		if _, err := ctx.CreateBuffer(ocl.MemReadOnly, size, payload); err != nil {
			t.Fatal(err)
		}
		want := int64(size) * int64(i+1)
		if got := rig.board.Stats().BytesIn - base; got != want {
			t.Fatalf("after create %d: %d bytes moved, want %d", i+1, got, want)
		}
	}
	if st := rig.mgr.CacheStats().BufferCache; st.Hits != 0 {
		t.Fatalf("opted-out clients produced %d cache hits", st.Hits)
	}
}

// runLoopbackOnce is one serverless-style invocation: fresh output buffer,
// kernel run, blocking read, release. The input buffer is reused by the
// caller across invocations (its content is what memoization keys on).
func runLoopbackOnce(t *testing.T, ctx ocl.Context, q ocl.CommandQueue, k ocl.Kernel, in ocl.Buffer, size int) []byte {
	t.Helper()
	out, err := ctx.CreateBuffer(ocl.MemWriteOnly, size, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Release()
	k.SetArg(0, in)
	k.SetArg(1, out)
	k.SetArg(2, int32(size))
	if _, err := q.EnqueueTask(k, nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if _, err := q.EnqueueReadBuffer(out, true, 0, got, nil); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestMemoHitReplaysKernelResult(t *testing.T) {
	rig := newRig(t, manager.Config{MemoizeKernels: true})
	c := dialReuse(t, rig, "memo-hit", false)
	ctx, dev, q := openDevice(t, c)
	k := buildLoopback(t, ctx, dev)
	const size = 4 << 10
	payload := weights(size)
	in, err := ctx.CreateBuffer(ocl.MemReadOnly, size, payload)
	if err != nil {
		t.Fatal(err)
	}

	first := runLoopbackOnce(t, ctx, q, k, in, size)
	if !bytes.Equal(first, payload) {
		t.Fatal("first invocation produced wrong bytes")
	}
	runsAfterFirst := rig.board.Stats().KernelRuns

	second := runLoopbackOnce(t, ctx, q, k, in, size)
	if !bytes.Equal(second, payload) {
		t.Fatal("memoized invocation produced wrong bytes")
	}
	if got := rig.board.Stats().KernelRuns; got != runsAfterFirst {
		t.Fatalf("second invocation ran the kernel (%d runs, want %d)", got, runsAfterFirst)
	}
	st := rig.mgr.CacheStats().MemoCache
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("memo stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestMemoInvalidatesOnReconfiguration(t *testing.T) {
	rig := newRig(t, manager.Config{MemoizeKernels: true})
	c := dialReuse(t, rig, "memo-reconf", false)
	ctx, dev, q := openDevice(t, c)
	k := buildLoopback(t, ctx, dev)
	const size = 1 << 10
	in, err := ctx.CreateBuffer(ocl.MemReadOnly, size, weights(size))
	if err != nil {
		t.Fatal(err)
	}
	runLoopbackOnce(t, ctx, q, k, in, size)

	// Reconfiguring the board drops every memoized result: a different
	// bitstream leaves no guarantee about replayed state.
	k2 := buildSobel(t, ctx, dev)
	_ = k2
	st := rig.mgr.CacheStats().MemoCache
	if st.Invalidations == 0 || st.Entries != 0 {
		t.Fatalf("memo stats after reconfigure = %+v, want cleared", st)
	}

	// Back on the original bitstream the old key must miss (re-run), not
	// replay a stale snapshot.
	k = buildLoopback(t, ctx, dev)
	runLoopbackOnce(t, ctx, q, k, in, size)
	if st := rig.mgr.CacheStats().MemoCache; st.Misses < 2 {
		t.Fatalf("memo stats after re-run = %+v, want a second miss", st)
	}
}

func TestMemoInvalidatesOnSessionRelease(t *testing.T) {
	rig := newRig(t, manager.Config{MemoizeKernels: true})
	c := dialReuse(t, rig, "memo-close", false)
	ctx, dev, q := openDevice(t, c)
	k := buildLoopback(t, ctx, dev)
	const size = 1 << 10
	in, err := ctx.CreateBuffer(ocl.MemReadOnly, size, weights(size))
	if err != nil {
		t.Fatal(err)
	}
	runLoopbackOnce(t, ctx, q, k, in, size)
	c.Close()

	// Disconnect handling is asynchronous to Close returning.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := rig.mgr.CacheStats().MemoCache
		if st.Invalidations >= 1 && st.Entries == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("memo stats after close = %+v, want owner invalidated", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMemoInvalidatesOnSessionExpiry(t *testing.T) {
	rig := newRig(t, manager.Config{MemoizeKernels: true, LeaseDuration: time.Hour})
	c := dialReuse(t, rig, "memo-expire", false)
	ctx, dev, q := openDevice(t, c)
	k := buildLoopback(t, ctx, dev)
	const size = 1 << 10
	in, err := ctx.CreateBuffer(ocl.MemReadOnly, size, weights(size))
	if err != nil {
		t.Fatal(err)
	}
	runLoopbackOnce(t, ctx, q, k, in, size)

	// Force the sweep from two lease periods in the future: the session
	// is past its deadline regardless of heartbeats sent so far.
	rig.mgr.SweepLeases(time.Now().Add(2 * time.Hour))
	st := rig.mgr.CacheStats().MemoCache
	if st.Invalidations == 0 || st.Entries != 0 {
		t.Fatalf("memo stats after expiry = %+v, want owner invalidated", st)
	}
}

// buildSobel mirrors buildLoopback for the Sobel design (used to force a
// reconfiguration).
func buildSobel(t *testing.T, ctx ocl.Context, dev ocl.Device) ocl.Kernel {
	t.Helper()
	prog, err := ctx.CreateProgramWithBinary(dev, accel.SobelBitstream().Binary())
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("sobel")
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestZeroCopyChainingMovesNoIntermediates(t *testing.T) {
	rig := newRig(t, manager.Config{})
	c := dialReuse(t, rig, "chain", false)
	ctx, dev, q := openDevice(t, c)
	k := buildLoopback(t, ctx, dev)
	const size = 32 << 10
	payload := weights(size)

	in, _ := ctx.CreateBuffer(ocl.MemReadWrite, size, nil)
	mid, _ := ctx.CreateBuffer(ocl.MemReadWrite, size, nil)
	mid2, _ := ctx.CreateBuffer(ocl.MemReadWrite, size, nil)
	out, _ := ctx.CreateBuffer(ocl.MemWriteOnly, size, nil)

	base := rig.board.Stats()
	if _, err := q.EnqueueWriteBuffer(in, false, 0, payload, nil); err != nil {
		t.Fatal(err)
	}
	// Stage 1: kernel in -> mid.
	k.SetArg(0, in)
	k.SetArg(1, mid)
	k.SetArg(2, int32(size))
	if _, err := q.EnqueueTask(k, nil); err != nil {
		t.Fatal(err)
	}
	// The chaining hop: mid -> mid2 entirely on the device.
	if _, err := q.EnqueueCopyBuffer(mid, mid2, 0, 0, size, nil); err != nil {
		t.Fatal(err)
	}
	// Stage 2: kernel mid2 -> out.
	k.SetArg(0, mid2)
	k.SetArg(1, out)
	k.SetArg(2, int32(size))
	if _, err := q.EnqueueTask(k, nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if _, err := q.EnqueueReadBuffer(out, true, 0, got, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("chained pipeline corrupted the payload")
	}

	// The zero-copy property: exactly one client write in, one client
	// read out — the intermediate moved only over on-board DDR.
	st := rig.board.Stats()
	if gotIn := st.BytesIn - base.BytesIn; gotIn != size {
		t.Fatalf("pipeline moved %d bytes client->board, want %d", gotIn, size)
	}
	if gotOut := st.BytesOut - base.BytesOut; gotOut != size {
		t.Fatalf("pipeline moved %d bytes board->client, want %d", gotOut, size)
	}
	if st.CopyOps-base.CopyOps != 1 || st.CopyBytes-base.CopyBytes != size {
		t.Fatalf("copy counters moved by %d ops / %d bytes, want 1 / %d",
			st.CopyOps-base.CopyOps, st.CopyBytes-base.CopyBytes, size)
	}
}

func TestEnqueueCopyValidationAndSharedDst(t *testing.T) {
	rig := newRig(t, manager.Config{})
	c := dialReuse(t, rig, "chain-edge", false)
	ctx, _, q := openDevice(t, c)
	const size = 1 << 10
	a, _ := ctx.CreateBuffer(ocl.MemReadWrite, size, nil)
	b, _ := ctx.CreateBuffer(ocl.MemReadWrite, size, nil)
	if _, err := q.EnqueueCopyBuffer(a, b, size-1, 0, 2, nil); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("out-of-range copy err = %v", err)
	}
	shared, err := ctx.CreateBuffer(ocl.MemReadOnly, size, weights(size))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueCopyBuffer(a, shared, 0, 0, size, nil); !errors.Is(err, ocl.ErrInvalidOperation) {
		t.Fatalf("copy into shared buffer err = %v", err)
	}
	// Copying OUT of a shared buffer is fine — that is the cached-weights
	// fan-out path.
	if _, err := q.EnqueueCopyBuffer(shared, a, 0, 0, size, nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if _, err := q.EnqueueReadBuffer(a, true, 0, got, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, weights(size)) {
		t.Fatal("copy out of shared buffer produced wrong bytes")
	}
}
