package manager

import (
	"sync"
	"sync/atomic"

	"blastfunction/internal/fpga"
	"blastfunction/internal/obs"
	"blastfunction/internal/ocl"
	"blastfunction/internal/rpc"
	"blastfunction/internal/shm"
	"blastfunction/internal/wire"
)

// session is one client's private resource pool. Handles issued to a
// client are session-scoped, so a tenant can neither guess nor reach
// another tenant's buffers, kernels or queues — the isolation property of
// the paper's Device Manager.
type session struct {
	id         uint64
	clientName string
	// proto is the protocol revision negotiated at Hello. Immutable after
	// the handshake; gates the batch notification path.
	proto uint32
	// conn is the session's connection, set at Hello. The lease sweeper
	// uses it to deliver OpFailed notifications and close an expired
	// session from outside the request path.
	conn *rpc.Conn
	// lastBeat is the unix-nano timestamp of the last request (any method
	// renews the lease, Heartbeat exists for idle sessions).
	lastBeat atomic.Int64
	// expired flips once the lease sweeper reclaims the session; the
	// worker fast-fails queued tasks of expired sessions instead of
	// running them against freed resources.
	expired atomic.Bool
	// weight is the fair-share weight the client declared at Hello (the
	// Registry-propagated binding); zero means unweighted. Immutable after
	// the handshake.
	weight int
	// flight keys the session's flight-recorder skeleton (synthetic:
	// session-scoped milestones happen outside any traced task). Set once
	// at Hello, before the connection serves requests.
	flight obs.TraceID

	mu       sync.Mutex
	nextID   uint64
	contexts map[uint64]struct{}
	queues   map[uint64]*queueState
	buffers  map[uint64]bufferInfo
	programs map[uint64]programInfo
	kernels  map[uint64]*kernelState
	seg      *shm.Segment
}

type queueState struct {
	// cur accumulates command-queue operations until the next flush seals
	// them into a task.
	cur []op
	// accepted holds the tags whose Accepted acknowledgement is deferred
	// to flush time, where they leave as one batch frame (batch-capable
	// peers only).
	accepted []uint64
}

type bufferInfo struct {
	boardID uint64
	size    int64
	flags   ocl.MemFlags
	// hash/shared mark a handle backed by the content-addressed cache:
	// the board buffer is shared across sessions, immutable (writes and
	// copy destinations are rejected), and released by reference count
	// instead of board.Free.
	hash   uint64
	shared bool
}

type programInfo struct {
	binary []byte
	bitID  string
	spec   *fpga.Bitstream
}

type kernelState struct {
	name    string
	numArgs int
	args    []ocl.Arg
	set     []bool
}

func newSession(id uint64, clientName string) *session {
	return &session{
		id:         id,
		clientName: clientName,
		contexts:   make(map[uint64]struct{}),
		queues:     make(map[uint64]*queueState),
		buffers:    make(map[uint64]bufferInfo),
		programs:   make(map[uint64]programInfo),
		kernels:    make(map[uint64]*kernelState),
	}
}

func (s *session) newID() uint64 {
	s.nextID++
	return s.nextID
}

// release frees everything the client still holds. Called on disconnect.
func (s *session) release(m *Manager) {
	// The departing tenant's memoized results go with it.
	m.invalidateMemoOwner(s.id)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, q := range s.queues {
		releaseOps(q.cur) // unflushed inline payloads go back to the pool
		q.cur = nil
		q.accepted = nil // connection gone: nobody left to notify
	}
	for _, b := range s.buffers {
		m.dropBuffer(b) // an already-freed buffer is harmless here
	}
	s.buffers = map[uint64]bufferInfo{}
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
	}
}

// expire reclaims the session after its lease ran out. Unlike release
// (where the connection is already gone), the connection is usually still
// alive here — the client is wedged or partitioned, not disconnected — so
// deferred Accepted acknowledgements are terminated with OpFailed, the way
// releaseQueue does, before the resources go away.
func (s *session) expire(m *Manager) {
	s.mu.Lock()
	var accepted []uint64
	for _, q := range s.queues {
		accepted = append(accepted, q.accepted...)
		q.accepted = nil
	}
	s.mu.Unlock()
	for _, tag := range accepted {
		s.sendFail(s.conn, tag, ocl.Errf(ocl.ErrDeviceNotAvailable, "session lease expired"))
	}
	s.release(m)
}

func encodeID(id uint64) []byte {
	e := wire.GetEncoder(8)
	(&wire.IDResponse{ID: id}).Encode(e)
	return e.Detach()
}

func (s *session) createContext() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.newID()
	s.contexts[id] = struct{}{}
	return encodeID(id), nil
}

func (s *session) releaseContext(d *wire.Decoder) ([]byte, error) {
	var req wire.IDRequest
	req.Decode(d)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.contexts[req.ID]; !ok {
		return nil, ocl.Errf(ocl.ErrInvalidContext, "context %d", req.ID)
	}
	delete(s.contexts, req.ID)
	return nil, nil
}

func (s *session) createQueue(d *wire.Decoder) ([]byte, error) {
	var req wire.IDRequest // carries the owning context
	req.Decode(d)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.contexts[req.ID]; !ok {
		return nil, ocl.Errf(ocl.ErrInvalidContext, "queue: context %d", req.ID)
	}
	id := s.newID()
	s.queues[id] = &queueState{}
	return encodeID(id), nil
}

func (s *session) releaseQueue(m *Manager, c *rpc.Conn, d *wire.Decoder) ([]byte, error) {
	var req wire.IDRequest
	req.Decode(d)
	s.mu.Lock()
	q, ok := s.queues[req.ID]
	if !ok {
		s.mu.Unlock()
		return nil, ocl.Errf(ocl.ErrInvalidCommandQueue, "queue %d", req.ID)
	}
	// Unflushed operations die with the queue; clients call Finish first
	// (the remote library always does).
	ops := q.cur
	q.cur = nil
	accepted := q.accepted
	q.accepted = nil
	delete(s.queues, req.ID)
	s.mu.Unlock()
	releaseOps(ops)
	// Batch-capable peers never got an acknowledgement for these tags (it
	// was deferred to flush); terminate their events instead of leaving
	// them dangling until connection teardown.
	for _, tag := range accepted {
		s.sendFail(c, tag, ocl.Errf(ocl.ErrInvalidOperation, "queue released before flush"))
	}
	return nil, nil
}

func (s *session) createBuffer(m *Manager, d *wire.Decoder) ([]byte, error) {
	var req wire.CreateBufferRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed CreateBuffer: %v", err)
	}
	if !ocl.MemFlags(req.Flags).Valid() {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "buffer flags %#x", req.Flags)
	}
	if req.InitData != nil && int64(len(req.InitData)) > req.Size {
		return nil, ocl.Errf(ocl.ErrInvalidBufferSize,
			"init data of %d bytes exceeds buffer size %d", len(req.InitData), req.Size)
	}
	s.mu.Lock()
	if _, ok := s.contexts[req.Context]; !ok {
		s.mu.Unlock()
		return nil, ocl.Errf(ocl.ErrInvalidContext, "buffer: context %d", req.Context)
	}
	s.mu.Unlock()
	if req.ContentHash != 0 {
		if m.bufcache == nil {
			if len(req.InitData) == 0 {
				// Probe against a disabled cache: always a miss. Answering
				// with a fresh uninitialized buffer here would hand the
				// client garbage it believes is its content.
				return encodeID(0), nil
			}
			// Upload frames just fall through to a plain private create.
		} else {
			return s.createCachedBuffer(m, &req)
		}
	}
	boardID, err := m.board.Alloc(req.Size)
	if err != nil {
		return nil, err
	}
	if len(req.InitData) > 0 {
		if _, err := m.board.Write(boardID, 0, req.InitData); err != nil {
			m.board.Free(boardID)
			return nil, err
		}
	}
	id := s.insertBuffer(bufferInfo{boardID: boardID, size: req.Size, flags: ocl.MemFlags(req.Flags)})
	return encodeID(id), nil
}

// insertBuffer registers a buffer in the session's pool under a fresh
// session-scoped handle.
func (s *session) insertBuffer(info bufferInfo) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.newID()
	s.buffers[id] = info
	return id
}

func (s *session) releaseBuffer(m *Manager, d *wire.Decoder) ([]byte, error) {
	var req wire.IDRequest
	req.Decode(d)
	s.mu.Lock()
	info, ok := s.buffers[req.ID]
	if ok {
		delete(s.buffers, req.ID)
	}
	s.mu.Unlock()
	if !ok {
		return nil, ocl.Errf(ocl.ErrInvalidMemObject, "buffer %d", req.ID)
	}
	return nil, m.dropBuffer(info)
}

// lookupBuffer resolves a session-scoped buffer handle.
func (s *session) lookupBuffer(id uint64) (bufferInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.buffers[id]
	if !ok {
		return bufferInfo{}, ocl.Errf(ocl.ErrInvalidMemObject, "buffer %d", id)
	}
	return info, nil
}

func (s *session) createProgram(board *fpga.Board, d *wire.Decoder) ([]byte, error) {
	var req wire.CreateProgramRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed CreateProgram: %v", err)
	}
	spec, err := board.Catalog().Parse(req.Binary)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if _, ok := s.contexts[req.Context]; !ok {
		s.mu.Unlock()
		return nil, ocl.Errf(ocl.ErrInvalidContext, "program: context %d", req.Context)
	}
	id := s.newID()
	s.programs[id] = programInfo{binary: req.Binary, bitID: spec.ID, spec: spec}
	s.mu.Unlock()

	e := wire.GetEncoder(64)
	(&wire.CreateProgramResponse{ID: id, Kernels: spec.KernelNames()}).Encode(e)
	return e.Detach(), nil
}

// programBinary returns the binary and bitstream ID of a program handle.
func (s *session) programBinary(id uint64) ([]byte, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.programs[id]
	if !ok {
		return nil, "", ocl.Errf(ocl.ErrInvalidProgram, "program %d", id)
	}
	return p.binary, p.bitID, nil
}

func (s *session) createKernel(d *wire.Decoder) ([]byte, error) {
	var req wire.CreateKernelRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed CreateKernel: %v", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.programs[req.Program]
	if !ok {
		return nil, ocl.Errf(ocl.ErrInvalidProgram, "kernel: program %d", req.Program)
	}
	spec, err := p.spec.Kernel(req.Name)
	if err != nil {
		return nil, err
	}
	id := s.newID()
	s.kernels[id] = &kernelState{
		name:    spec.Name,
		numArgs: spec.NumArgs,
		args:    make([]ocl.Arg, spec.NumArgs),
		set:     make([]bool, spec.NumArgs),
	}
	return encodeID(id), nil
}

func (s *session) releaseKernel(d *wire.Decoder) ([]byte, error) {
	var req wire.IDRequest
	req.Decode(d)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.kernels[req.ID]; !ok {
		return nil, ocl.Errf(ocl.ErrInvalidKernel, "kernel %d", req.ID)
	}
	delete(s.kernels, req.ID)
	return nil, nil
}

func (s *session) setKernelArg(d *wire.Decoder) ([]byte, error) {
	var req wire.SetKernelArgRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed SetKernelArg: %v", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.kernels[req.Kernel]
	if !ok {
		return nil, ocl.Errf(ocl.ErrInvalidKernel, "kernel %d", req.Kernel)
	}
	if int(req.Index) >= k.numArgs {
		return nil, ocl.Errf(ocl.ErrInvalidArgIndex,
			"kernel %q has %d args, index %d", k.name, k.numArgs, req.Index)
	}
	arg := req.Arg
	if arg.Kind == ocl.ArgBuffer {
		// Translate the session-scoped buffer handle to the board handle
		// now; a dangling handle fails fast at SetArg like real OpenCL.
		info, ok := s.buffers[arg.BufferID]
		if !ok {
			return nil, ocl.Errf(ocl.ErrInvalidMemObject, "arg %d: buffer %d", req.Index, arg.BufferID)
		}
		arg.BufferID = info.boardID
	}
	k.args[req.Index] = arg
	k.set[req.Index] = true
	return nil, nil
}

func (s *session) setupShm(d *wire.Decoder) ([]byte, error) {
	var req wire.SetupShmRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed SetupShm: %v", err)
	}
	seg, err := shm.Open(req.Path, req.Size)
	if err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "shm open: %v", err)
	}
	s.mu.Lock()
	if s.seg != nil {
		s.seg.Close()
	}
	s.seg = seg
	s.mu.Unlock()
	return nil, nil
}

// segment returns the session's shared-memory segment, if negotiated.
func (s *session) segment() *shm.Segment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seg
}

// queue returns the state of a session-scoped queue handle.
func (s *session) queue(id uint64) (*queueState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[id]
	if !ok {
		return nil, ocl.Errf(ocl.ErrInvalidCommandQueue, "queue %d", id)
	}
	return q, nil
}

// sendFail pushes an OpFailed notification for a command-queue request
// that could not even join a task. Command-queue methods never produce
// unary errors: their failures travel on the event path, as in the
// paper's asynchronous flow.
func (s *session) sendFail(c *rpc.Conn, tag uint64, err error) {
	notifySingle(c, s.proto, &wire.OpNotification{
		Tag:    tag,
		State:  wire.OpFailed,
		Status: int32(ocl.StatusOf(err)),
		Error:  err.Error(),
	})
}
