// Package manager implements the BlastFunction Device Manager.
//
// One Device Manager controls one FPGA board and provides the time-sharing
// mechanism of the paper's Section III-B:
//
//   - context and information methods (session, context, queue, buffer,
//     program and kernel management) execute synchronously; the board
//     reconfiguration request is the one blocking member of this group;
//   - command-queue methods (enqueue write/read/kernel) accumulate into
//     the client's current multi-operation task, the atomic unit of
//     execution; a flush seals the task and submits it to the manager's
//     central FIFO queue;
//   - a worker pulls tasks and executes them on the FPGA one at a time,
//     notifying the per-operation events back to the caller as each
//     operation completes;
//   - each client's resource pool (buffers, kernels, queues) is private,
//     enforcing isolation between tenants sharing the board;
//   - data moves inline over the RPC channel or through a per-client
//     shared-memory segment;
//   - runtime metrics (above all the FPGA time utilization) are exported
//     in the Prometheus text format for the Accelerators Registry.
package manager

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"blastfunction/internal/datacache"
	"blastfunction/internal/flash"
	"blastfunction/internal/flightrec"
	"blastfunction/internal/fpga"
	"blastfunction/internal/logx"
	"blastfunction/internal/metrics"
	"blastfunction/internal/obs"
	"blastfunction/internal/ocl"
	"blastfunction/internal/rpc"
	"blastfunction/internal/sched"
	"blastfunction/internal/wire"
)

// Config parameterizes a Device Manager.
type Config struct {
	// Node is the node name the manager runs on; clients compare it with
	// their own to decide whether shared memory is possible.
	Node string
	// DeviceID names the managed board in metrics and the Registry.
	DeviceID string
	// QueueCapacity bounds the central task queue; submissions block when
	// it is full (backpressure). Zero selects 1024.
	QueueCapacity int
	// ReconfigGate, when set, validates reconfiguration requests before
	// they reach the board. The Accelerators Registry installs a gate that
	// enforces its allocation decisions.
	ReconfigGate func(clientName, bitstreamID string) error
	// LeaseDuration bounds how long a session survives without traffic.
	// The manager advertises it at Hello; clients heartbeat at a third of
	// it, and any request renews the lease. A session silent past the
	// duration is expired: its queues, buffers and in-flight task slots are
	// reclaimed exactly as on disconnect, and deferred acknowledgements
	// fail with OpFailed before the connection is closed. Zero disables
	// leases. Sessions negotiated below wire.ProtoVersionLease are never
	// expired — they predate heartbeats.
	LeaseDuration time.Duration
	// Scheduler selects the central-queue discipline: "fifo" (default,
	// the paper's strict arrival order), "drr" (deficit round-robin
	// weighted fair queuing across tenants) or "deadline" (EDF on
	// client-supplied soft deadline hints). An unknown name falls back to
	// fifo so a misconfigured manager still serves paper-faithfully.
	Scheduler string
	// TenantWeights assigns drr fair-share weights by client name; the
	// operator table overrides weights carried in Hello (the Registry
	// binding), and tenants with neither get weight 1.
	TenantWeights map[string]int
	// StarvationGuard bounds any tenant's queue wait under drr: an item
	// older than the guard is served next regardless of deficits. Zero
	// selects the sched default (2s); negative disables the guard.
	StarvationGuard time.Duration
	// Log receives the manager's structured events (lease expiries, task
	// failures, reconfigurations), trace-correlated where a task caused
	// them. A nil logger logs nothing — the zero-cost production default
	// for the hot path.
	Log *logx.Logger
	// TraceRing bounds the manager's distributed-tracing span ring (served
	// at /debug/spans). Zero selects the obs default (4096). The manager
	// never initiates traces — it records spans only for tasks whose client
	// sampled them and put the IDs on the wire.
	TraceRing int
	// BufferCacheBytes bounds the content-addressed device buffer cache
	// (repeated CreateBuffer payloads upload once per board). Zero selects
	// 256 MiB; negative disables the cache, making every content-hash
	// probe a miss.
	BufferCacheBytes int64
	// MemoizeKernels enables memoization of kernel results. Opt-in: only
	// deployments whose kernels are idempotent pure functions of their
	// arguments (the Spector benchmarks, CNN inference) should set it.
	MemoizeKernels bool
	// MemoCacheBytes bounds the memoized result snapshots. Zero selects
	// 64 MiB.
	MemoCacheBytes int64
	// FlashHistoryPath is the flash service's durable JSONL ledger of
	// board reprogrammings, reloaded on restart; empty keeps the history
	// in memory only.
	FlashHistoryPath string
	// FlashHistoryLimit bounds the per-board history served at
	// /debug/flash. Zero selects the flash package default.
	FlashHistoryLimit int
	// FlightRing bounds the flight recorder's in-memory ring (whole task
	// skeletons, served at /debug/flight). Zero selects the flightrec
	// default (1024).
	FlightRing int
	// FlightLedgerPath is the durable JSONL spill file for notable
	// flights (failed tasks, tail-latency outliers); empty keeps flights
	// in memory only.
	FlightLedgerPath string
	// NoFlightRecorder disables the always-on flight recorder entirely —
	// the recorder-overhead benchmark's baseline, not a production knob.
	NoFlightRecorder bool
}

// Manager serves one board. It implements rpc.Handler.
type Manager struct {
	cfg   Config
	board *fpga.Board
	reg   *metrics.Registry

	disc  sched.Discipline
	queue sched.Queue

	mu       sync.Mutex
	sessions map[uint64]*session
	nextSess uint64
	closed   bool

	wg        sync.WaitGroup
	stopSweep chan struct{}

	// Counters behind the exported metrics.
	mConnected  metrics.Gauge
	mTasks      metrics.Counter
	mOps        metrics.Counter
	mQueueDepth metrics.Gauge
	mBusy       metrics.Counter
	mScale      metrics.Gauge
	mReconfigs  metrics.Counter
	mBytesIn    metrics.Counter
	mBytesOut   metrics.Counter
	mKernels    metrics.Counter
	mLeaseExp   metrics.Counter
	mTaskHist   metrics.Histogram
	// mReconfigHist distributes per-flash reprogramming time next to the
	// bf_reconfigurations_total counter (alerting reads the rate of the
	// counter, capacity planning the histogram).
	mReconfigHist metrics.Histogram
	mBufInval     metrics.Counter

	// flash serializes board reprogramming: every BuildProgram becomes a
	// job, concurrent demand for one bitstream coalesces onto one flash.
	flash *flash.Service

	// Data-plane reuse layer (ISSUE 6): content-addressed buffer cache,
	// kernel memoization, device-to-device copy accounting.
	bufcache      *datacache.BufferCache // nil when disabled
	memo          *datacache.MemoCache   // nil unless MemoizeKernels
	mBufHits      metrics.Counter
	mBufMisses    metrics.Counter
	mBufSaved     metrics.Counter
	mBufEvict     metrics.Counter
	gBufResident  metrics.Gauge
	gBufEntries   metrics.Gauge
	mMemoHits     metrics.Counter
	mMemoMisses   metrics.Counter
	mMemoInval    metrics.Counter
	gMemoResident metrics.Gauge
	mCopies       metrics.Counter
	mCopyBytes    metrics.Counter

	// Per-tenant series (device/node/tenant labels), created on a
	// tenant's first contact with the queue.
	tmu     sync.Mutex
	tenants map[string]*tenantMetrics

	traces *traceRing

	// tracer records the manager's stages (queue-wait, execute, op, notify)
	// of client-sampled traces; SampleRate stays zero — sampling decisions
	// belong to the library.
	tracer *obs.Tracer

	// log receives structured events; nil-safe (see Config.Log).
	log *logx.Logger

	// flight is the always-on task flight recorder: every task leaves a
	// milestone skeleton at /debug/flight whether or not it was sampled.
	// Nil only under Config.NoFlightRecorder (all calls no-op).
	flight *flightrec.Recorder

	lastBusy atomic.Int64 // last board busy reading pushed to mBusy
}

// tenantMetrics is one tenant's exported series plus the raw cumulative
// device time backing the occupancy-share computation.
type tenantMetrics struct {
	depth     metrics.Gauge     // bf_tenant_queue_depth
	waitTotal metrics.Counter   // bf_tenant_queue_wait_seconds_total
	waitHist  metrics.Histogram // bf_tenant_queue_wait_seconds (alerting reads its p95)
	deviceSec metrics.Counter   // bf_tenant_device_seconds_total
	tasks     metrics.Counter   // bf_tenant_tasks_total
	latHist   metrics.Histogram // bf_task_latency_seconds (SLO latency SLI)
	failures  metrics.Counter   // bf_tenant_task_failures_total (SLO availability SLI)
	deviceNS  atomic.Int64
}

// tenantMetric returns (creating on first use) the tenant's series.
func (m *Manager) tenantMetric(tenant string) *tenantMetrics {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	tm, ok := m.tenants[tenant]
	if !ok {
		lbl := metrics.Labels{"device": m.cfg.DeviceID, "node": m.cfg.Node, "tenant": tenant}
		tm = &tenantMetrics{
			depth:     m.reg.Gauge("bf_tenant_queue_depth", "Tasks a tenant has waiting in the central queue.", lbl),
			waitTotal: m.reg.Counter("bf_tenant_queue_wait_seconds_total", "Cumulative queue wait of the tenant's executed tasks.", lbl),
			waitHist:  m.reg.Histogram("bf_tenant_queue_wait_seconds", "Queue-wait distribution of the tenant's executed tasks.", lbl, nil),
			deviceSec: m.reg.Counter("bf_tenant_device_seconds_total", "Modelled device time consumed by the tenant.", lbl),
			tasks:     m.reg.Counter("bf_tenant_tasks_total", "Tasks the tenant executed on the device.", lbl),
			latHist:   m.reg.Histogram("bf_task_latency_seconds", "End-to-end task residency (submit to completion) per tenant; carries trace exemplars.", lbl, nil),
			failures:  m.reg.Counter("bf_tenant_task_failures_total", "Tasks that completed with a failed operation.", lbl),
		}
		m.tenants[tenant] = tm
	}
	return tm
}

// New creates a Device Manager for the board and starts its worker.
func New(cfg Config, board *fpga.Board) *Manager {
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 1024
	}
	if cfg.DeviceID == "" {
		cfg.DeviceID = "fpga0"
	}
	// An unknown discipline name falls back to fifo: a misconfigured
	// manager still serves tasks in the paper's arrival order.
	disc, err := sched.ParseDiscipline(cfg.Scheduler)
	if err != nil {
		disc = sched.FIFO
	}
	q, err := sched.New(disc, sched.Config{
		Capacity:        cfg.QueueCapacity,
		Weights:         cfg.TenantWeights,
		StarvationGuard: cfg.StarvationGuard,
	})
	if err != nil { // unreachable: disc is one of the known values
		q, _ = sched.New(sched.FIFO, sched.Config{Capacity: cfg.QueueCapacity})
	}
	reg := metrics.NewRegistry()
	lbl := metrics.Labels{"device": cfg.DeviceID, "node": cfg.Node}
	m := &Manager{
		cfg:      cfg,
		board:    board,
		reg:      reg,
		disc:     disc,
		queue:    q,
		sessions: make(map[uint64]*session),
		tenants:  make(map[string]*tenantMetrics),

		mConnected:  reg.Gauge("bf_connected_clients", "Function instances connected to this Device Manager.", lbl),
		mTasks:      reg.Counter("bf_tasks_total", "Tasks executed on the device.", lbl),
		mOps:        reg.Counter("bf_ops_total", "Operations executed on the device.", lbl),
		mQueueDepth: reg.Gauge("bf_queue_depth", "Tasks waiting in the central queue.", lbl),
		mBusy:       reg.Counter("bf_device_busy_seconds_total", "Modelled seconds the device spent computing OpenCL calls.", lbl),
		mScale:      reg.Gauge("bf_device_time_scale", "Wall seconds per modelled second (board TimeScale).", lbl),
		mReconfigs:  reg.Counter("bf_reconfigurations_total", "Board reconfigurations performed.", lbl),
		mBytesIn:    reg.Counter("bf_bytes_in_total", "Bytes written to the device.", lbl),
		mBytesOut:   reg.Counter("bf_bytes_out_total", "Bytes read from the device.", lbl),
		mKernels:    reg.Counter("bf_kernel_runs_total", "Kernel launches executed.", lbl),
		mLeaseExp:   reg.Counter("bf_lease_expiries_total", "Sessions reclaimed after their lease expired.", lbl),
		mTaskHist: reg.Histogram("bf_task_device_seconds",
			"Modelled device occupancy per executed task.", lbl, nil),
		mReconfigHist: reg.Histogram("bf_reconfig_seconds",
			"Modelled board reprogramming time per reconfiguration.", lbl, nil),
		mBufInval: reg.Counter("bf_bufcache_invalidations_total",
			"Cached buffers dropped because a reconfiguration changed the memory geometry.", lbl),
		mBufHits:      reg.Counter("bf_bufcache_hits_total", "Content-hashed buffer creates served from resident device buffers.", lbl),
		mBufMisses:    reg.Counter("bf_bufcache_misses_total", "Content-hashed buffer creates that uploaded a new payload.", lbl),
		mBufSaved:     reg.Counter("bf_bufcache_bytes_saved_total", "Payload bytes the buffer cache kept off the wire and the PCIe link.", lbl),
		mBufEvict:     reg.Counter("bf_bufcache_evictions_total", "Idle cached buffers evicted to respect the cache byte bound.", lbl),
		gBufResident:  reg.Gauge("bf_bufcache_resident_bytes", "Device memory held by the content-addressed buffer cache.", lbl),
		gBufEntries:   reg.Gauge("bf_bufcache_entries", "Buffers resident in the content-addressed cache.", lbl),
		mMemoHits:     reg.Counter("bf_memo_hits_total", "Kernel launches served from the memoization cache.", lbl),
		mMemoMisses:   reg.Counter("bf_memo_misses_total", "Memoizable kernel launches that executed on the device.", lbl),
		mMemoInval:    reg.Counter("bf_memo_invalidations_total", "Memoized results dropped by reconfiguration or session teardown.", lbl),
		gMemoResident: reg.Gauge("bf_memo_resident_bytes", "Result snapshot bytes resident in the memoization cache.", lbl),
		mCopies:       reg.Counter("bf_copy_ops_total", "Device-to-device buffer copies executed (task chaining).", lbl),
		mCopyBytes:    reg.Counter("bf_copy_bytes_total", "Bytes moved by device-to-device buffer copies.", lbl),
		log:           cfg.Log,
		traces:        newTraceRing(512),
		tracer: obs.New(obs.Config{
			Component: "manager",
			RingSize:  cfg.TraceRing,
			Registry:  reg,
			Labels:    lbl,
		}),
	}
	m.mScale.Set(board.Config().TimeScale)
	if !cfg.NoFlightRecorder {
		m.flight = flightrec.New(flightrec.Config{
			Process:    "manager/" + cfg.DeviceID,
			Flights:    cfg.FlightRing,
			LedgerPath: cfg.FlightLedgerPath,
		})
	}
	if cfg.BufferCacheBytes >= 0 {
		capBytes := cfg.BufferCacheBytes
		if capBytes == 0 {
			capBytes = 256 << 20
		}
		// The eviction callback returns board memory; it only ever fires
		// for idle entries, so freeing here cannot race a kernel argument.
		m.bufcache = datacache.NewBufferCache(capBytes, func(boardID uint64) {
			board.Free(boardID)
			m.mBufEvict.Inc()
		})
	}
	if cfg.MemoizeKernels {
		capBytes := cfg.MemoCacheBytes
		if capBytes <= 0 {
			capBytes = 64 << 20
		}
		m.memo = datacache.NewMemoCache(capBytes)
	}
	// The flash service owns every board reprogramming: one active flash,
	// FIFO within priority, durable history, coalesced concurrent demand.
	// An unopenable history file degrades to in-memory history rather
	// than refusing to serve the board.
	fl, err := flash.New(flash.Config{
		Flasher:      m.flashBoard,
		HistoryPath:  cfg.FlashHistoryPath,
		HistoryLimit: cfg.FlashHistoryLimit,
		Metrics:      reg,
		Labels:       lbl,
		Log:          cfg.Log,
	})
	if err != nil {
		cfg.Log.Warn("flash history unavailable, keeping history in memory",
			"path", cfg.FlashHistoryPath, "err", err)
		fl, _ = flash.New(flash.Config{
			Flasher: m.flashBoard, Metrics: reg, Labels: lbl, Log: cfg.Log,
		})
	}
	m.flash = fl
	m.wg.Add(1)
	go m.worker()
	if cfg.LeaseDuration > 0 {
		m.stopSweep = make(chan struct{})
		m.wg.Add(1)
		go m.leaseSweeper()
	}
	return m
}

// Board returns the managed board.
func (m *Manager) Board() *fpga.Board { return m.board }

// Node returns the manager's node name.
func (m *Manager) Node() string { return m.cfg.Node }

// DeviceID returns the managed device's identifier.
func (m *Manager) DeviceID() string { return m.cfg.DeviceID }

// MetricsHandler serves the manager's metrics in exposition format.
func (m *Manager) MetricsHandler() http.Handler { return m.reg.Handler() }

// Metrics exposes the registry for in-process consumers (tests, embedded
// deployments).
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// Close stops the worker after draining submitted tasks. Connections are
// owned by the rpc.Server and closed there.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	if m.stopSweep != nil {
		close(m.stopSweep)
	}
	m.queue.Close() // the worker drains what is queued, then exits
	m.wg.Wait()
	m.flash.Close() // fails queued flashes, finishes the in-flight one
	m.flight.Close()
}

// Flight exposes the manager's flight recorder (nil-safe; nil when
// disabled).
func (m *Manager) Flight() *flightrec.Recorder { return m.flight }

// FlightHandler serves the flight ring at /debug/flight.
func (m *Manager) FlightHandler() http.Handler { return m.flight.Handler() }

// Discipline reports the scheduling discipline the central queue runs.
func (m *Manager) Discipline() sched.Discipline { return m.disc }

// leaseSweeper periodically expires sessions whose lease ran out. Checking
// at a quarter of the lease keeps the detection latency well under half a
// lease period.
func (m *Manager) leaseSweeper() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.LeaseDuration / 4)
	defer tick.Stop()
	for {
		select {
		case <-m.stopSweep:
			return
		case <-tick.C:
			m.sweepLeases(time.Now())
		}
	}
}

// sweepLeases expires every lease-bearing session silent past the lease
// duration.
func (m *Manager) sweepLeases(now time.Time) {
	deadline := now.Add(-m.cfg.LeaseDuration).UnixNano()
	m.mu.Lock()
	var dead []*session
	for _, s := range m.sessions {
		// Pre-lease protocols have no heartbeat to send; never expire them.
		if s.proto >= wire.ProtoVersionLease && s.lastBeat.Load() < deadline {
			dead = append(dead, s)
		}
	}
	for _, s := range dead {
		delete(m.sessions, s.id)
	}
	m.mu.Unlock()
	for _, s := range dead {
		m.expireSession(s)
	}
}

// expireSession reclaims an expired session: in-flight task slots fail
// fast, deferred acknowledgements are terminated with OpFailed while the
// connection can still carry them, board resources are freed, and finally
// the connection is closed (a wedged client that recovers must re-Hello).
func (m *Manager) expireSession(s *session) {
	s.expired.Store(true)
	// Pull the session's queued tasks out of whichever structure the
	// discipline holds them in: they fail here without ever occupying the
	// board, instead of waiting for the worker's expired-session check.
	err := ocl.Errf(ocl.ErrDeviceNotAvailable, "session lease expired")
	m.log.Warn("session lease expired", "client", s.clientName, "session", s.id)
	for _, it := range m.queue.Remove(s.id) {
		t := it.Payload.(*task)
		if t.trace != 0 {
			// Correlate the expiry with the trace of each queued task it
			// kills, so `blastctl logs -trace` explains the OpFailed.
			m.log.Warn("queued task failed: session lease expired",
				"client", s.clientName, "ops", len(t.ops), "trace", obs.TraceID(t.trace))
		}
		m.tenantMetric(t.sess.clientName).depth.Add(-1)
		for i := range t.ops {
			t.sess.sendFail(t.conn, t.ops[i].tag, err) // best effort
		}
		releaseOps(t.ops)
		m.flight.CompleteWith(t.flight, s.clientName,
			[]flightrec.Event{{Kind: flightrec.KindFailure, Detail: "session lease expired while queued"}},
			0, true, "lease expired")
	}
	m.flight.MarkNotable(s.flight, "lease-expired")
	m.flight.Complete(s.flight, 0, true, "lease expired")
	m.mQueueDepth.Set(float64(m.queue.Len()))
	s.expire(m)
	m.mLeaseExp.Inc()
	if s.conn != nil {
		s.conn.Close()
	}
}

// worker is the single executor pulling tasks from the central queue
// under the configured discipline — one task occupies the FPGA at a
// time. The queue's close-drain semantics keep shutdown identical to the
// old channel ranging: everything submitted before Close still runs.
func (m *Manager) worker() {
	defer m.wg.Done()
	// Per-worker flight-milestone scratch: tasks run serially on a worker,
	// so one grown array serves every task's lock-free accumulation. The
	// recorder copies events out in CompleteWith, never retaining the slice.
	var scratch []flightrec.Event
	for {
		it, ok := m.queue.Pop(context.Background())
		if !ok {
			return
		}
		t := it.Payload.(*task)
		popped := time.Now()
		t.queueWait = popped.Sub(it.Submitted)
		if t.trace != 0 {
			// The central-queue wait: flush arrival until the worker popped
			// the task, parented under the client's task root span.
			m.tracer.End(obs.TraceID(t.trace), m.tracer.NewSpan(), obs.SpanID(t.span),
				"queue-wait", "", it.Submitted)
		}
		// The enqueue and schedule milestones join the batch here rather
		// than at submit: the queue snapshot (Depth/Pos) is only final
		// after Push, and the worker is the first code that sees it.
		t.flightEvs = append(scratch[:0],
			flightrec.Event{Kind: flightrec.KindEnqueued, Depth: it.Depth, Pos: it.Pos,
				Detail: fmt.Sprintf("%d ops", len(t.ops)), Time: it.Submitted},
			flightrec.Event{Kind: flightrec.KindScheduled, Dur: t.queueWait, Detail: string(m.disc), Time: popped})
		m.mQueueDepth.Set(float64(m.queue.Len()))
		tm := m.tenantMetric(t.sess.clientName)
		tm.depth.Add(-1)
		tm.waitTotal.Add(t.queueWait.Seconds())
		tm.waitHist.Observe(t.queueWait.Seconds())
		failed := m.runTask(t)
		if failed {
			tm.failures.Inc()
		}
		// Task residency — submit to completion — is the latency the
		// tenant's SLO is declared against. A sampled task's trace rides
		// as the bucket exemplar (empty trace degrades to plain Observe).
		residency := time.Since(it.Submitted)
		var traceID string
		if t.trace != 0 {
			traceID = obs.TraceID(t.trace).String()
		}
		tm.latHist.ObserveExemplar(residency.Seconds(), traceID)
		m.flight.CompleteWith(t.flight, t.sess.clientName, t.flightEvs, residency, failed, t.failCause)
		scratch, t.flightEvs = t.flightEvs, nil
		m.syncBoardCounters()
	}
}

// syncBoardCounters pushes the board's cumulative counters into the
// exported metrics.
func (m *Manager) syncBoardCounters() {
	st := m.board.Stats()
	busy := int64(st.BusyTime)
	prev := m.lastBusy.Swap(busy)
	if busy > prev {
		m.mBusy.Add(time.Duration(busy - prev).Seconds())
	}
}

// HandleConnect implements rpc.Handler.
func (m *Manager) HandleConnect(c *rpc.Conn) {
	m.mConnected.Add(1)
}

// HandleDisconnect implements rpc.Handler: release the client's private
// resource pool.
func (m *Manager) HandleDisconnect(c *rpc.Conn) {
	m.mConnected.Add(-1)
	s, _ := c.Session().(*session)
	if s == nil {
		return
	}
	m.mu.Lock()
	delete(m.sessions, s.id)
	m.mu.Unlock()
	m.log.Debug("session closed", "client", s.clientName, "session", s.id)
	s.release(m)
}

// HandleRequest implements rpc.Handler, dispatching the Device Manager
// service methods.
func (m *Manager) HandleRequest(c *rpc.Conn, method wire.Method, body []byte) ([]byte, error) {
	d := wire.NewDecoder(body)
	if method == wire.MethodHello {
		return m.handleHello(c, d)
	}
	s, _ := c.Session().(*session)
	if s == nil {
		return nil, ocl.Errf(ocl.ErrInvalidOperation, "no session: Hello required first")
	}
	// Any request proves the client is alive; dedicated heartbeats only
	// matter on otherwise idle sessions.
	s.lastBeat.Store(time.Now().UnixNano())
	switch method {
	case wire.MethodHeartbeat:
		// Consecutive renewals coalesce into one counted milestone on the
		// session's flight, so an idle hour reads as "lease-renewal ×120".
		m.flight.Record(s.flight, flightrec.Event{Kind: flightrec.KindLease})
		return nil, nil // the renewal above is the whole effect
	case wire.MethodDeviceInfo:
		return m.handleDeviceInfo()
	case wire.MethodCreateContext:
		return s.createContext()
	case wire.MethodReleaseContext:
		return s.releaseContext(d)
	case wire.MethodCreateQueue:
		return s.createQueue(d)
	case wire.MethodReleaseQueue:
		return s.releaseQueue(m, c, d)
	case wire.MethodCreateBuffer:
		return s.createBuffer(m, d)
	case wire.MethodReleaseBuffer:
		return s.releaseBuffer(m, d)
	case wire.MethodCreateProgram:
		return s.createProgram(m.board, d)
	case wire.MethodBuildProgram:
		return m.handleBuildProgram(s, d)
	case wire.MethodCreateKernel:
		return s.createKernel(d)
	case wire.MethodReleaseKernel:
		return s.releaseKernel(d)
	case wire.MethodSetKernelArg:
		return s.setKernelArg(d)
	case wire.MethodSetupShm:
		return s.setupShm(d)
	case wire.MethodEnqueueWrite:
		return s.enqueueWrite(m, c, d)
	case wire.MethodEnqueueRead:
		return s.enqueueRead(m, c, d)
	case wire.MethodEnqueueKernel:
		return s.enqueueKernel(m, c, d)
	case wire.MethodEnqueueCopy:
		return s.enqueueCopy(m, c, d)
	case wire.MethodFlush:
		return s.flush(m, c, d)
	}
	return nil, ocl.Errf(ocl.ErrInvalidOperation, "unknown method %v", method)
}

func (m *Manager) handleHello(c *rpc.Conn, d *wire.Decoder) ([]byte, error) {
	var req wire.HelloRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed Hello: %v", err)
	}
	// Accept the whole supported window so older libraries keep working
	// against a newer manager. The session runs at the client's version;
	// batch notification frames are gated on it.
	if req.ProtoVersion < wire.MinProtoVersion || req.ProtoVersion > wire.ProtoVersion {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "protocol version %d, manager speaks %d through %d",
			req.ProtoVersion, wire.MinProtoVersion, wire.ProtoVersion)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ocl.Errf(ocl.ErrDeviceNotAvailable, "manager shutting down")
	}
	m.nextSess++
	s := newSession(m.nextSess, req.ClientName)
	s.proto = req.ProtoVersion
	s.conn = c
	// The fair-share weight travels with the instance binding (Registry →
	// gateway → Hello); the manager's static table, when set, wins inside
	// the queue's weight resolution.
	s.weight = int(req.Weight)
	s.lastBeat.Store(time.Now().UnixNano())
	m.sessions[s.id] = s
	m.mu.Unlock()
	c.SetSession(s)
	// Session-scoped milestones (cache probes, flash waits, lease
	// renewals) attach to a synthetic per-session flight: they happen
	// outside any task, before a trace can exist.
	s.flight = m.flight.Begin(0, s.clientName)
	m.log.Debug("session opened", "client", s.clientName, "session", s.id, "proto", int(s.proto))

	var leaseMillis uint32
	if s.proto >= wire.ProtoVersionLease && m.cfg.LeaseDuration > 0 {
		leaseMillis = uint32(m.cfg.LeaseDuration / time.Millisecond)
	}
	e := wire.GetEncoder(32)
	(&wire.HelloResponse{SessionID: s.id, Node: m.cfg.Node, Proto: s.proto, LeaseMillis: leaseMillis}).Encode(e)
	return e.Detach(), nil
}

func (m *Manager) handleDeviceInfo() ([]byte, error) {
	cfg := m.board.Config()
	// Advertise the wall-clock reprogramming cost so clients size their
	// BuildProgram deadline to outlive a flash: modelled reconfiguration
	// time scaled into real time, rounded up to a whole millisecond. A
	// zero TimeScale flashes in no wall time, so nothing is advertised.
	var reconfigMillis uint32
	if ts := cfg.TimeScale; ts > 0 && cfg.Cost != nil {
		wall := time.Duration(float64(cfg.Cost.ReconfigureTime) * ts)
		reconfigMillis = uint32((wall + time.Millisecond - 1) / time.Millisecond)
	}
	e := wire.GetEncoder(128)
	(&wire.DeviceInfoResponse{
		Name:           cfg.Name,
		Vendor:         cfg.Vendor,
		PlatformName:   "Intel(R) FPGA SDK for OpenCL(TM) (BlastFunction remote)",
		GlobalMem:      cfg.MemBytes,
		ConfiguredBit:  m.board.ConfiguredID(),
		Accelerator:    m.board.ConfiguredAccelerator(),
		ReconfigMillis: reconfigMillis,
	}).Encode(e)
	return e.Detach(), nil
}

// handleBuildProgram is the blocking board-reconfiguration request: it is
// the only context/information method that stalls the device. The actual
// reprogramming goes through the flash service — this handler submits a
// job and blocks on its outcome, so concurrent Builds for the same
// bitstream coalesce onto one flash instead of serializing on the board
// mutex one no-op at a time.
func (m *Manager) handleBuildProgram(s *session, d *wire.Decoder) ([]byte, error) {
	var req wire.IDRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed BuildProgram: %v", err)
	}
	binary, bitID, err := s.programBinary(req.ID)
	if err != nil {
		return nil, err
	}
	if m.board.ConfiguredID() == bitID {
		return nil, nil // already configured: cheap no-op as in the Intel runtime
	}
	if gate := m.cfg.ReconfigGate; gate != nil {
		if err := gate(s.clientName, bitID); err != nil {
			m.log.Warn("reconfiguration rejected", "client", s.clientName, "bitstream", bitID, "err", err)
			return nil, ocl.Errf(ocl.ErrInvalidOperation, "reconfiguration rejected: %v", err)
		}
	}
	var accel string
	if bs, lerr := m.board.Catalog().Lookup(bitID); lerr == nil {
		accel = bs.Accelerator
	}
	ticket := m.flash.Submit(flash.Request{
		Board:       m.cfg.DeviceID,
		Bitstream:   bitID,
		Accelerator: accel,
		Requester:   s.clientName,
		Binary:      binary,
	})
	m.flight.Record(s.flight, flightrec.Event{Kind: flightrec.KindFlashJoin, Detail: bitID})
	waitStart := time.Now()
	err = ticket.Wait(context.Background())
	m.flight.Record(s.flight, flightrec.Event{
		Kind: flightrec.KindFlashWait, Detail: bitID, Dur: time.Since(waitStart)})
	if err != nil {
		m.flight.Record(s.flight, flightrec.Event{
			Kind: flightrec.KindFailure, Detail: "reconfiguration failed: " + err.Error()})
		m.flight.MarkNotable(s.flight, "reconfiguration failed")
		m.log.Error("board reconfiguration failed", "client", s.clientName, "bitstream", bitID, "err", err)
		return nil, err
	}
	m.log.Info("board reconfigured", "client", s.clientName, "bitstream", bitID)
	return nil, nil
}

// flashBoard is the flash service's executor: the one place a bitstream
// reaches the board. It runs on the flash worker goroutine, so post-flash
// bookkeeping (metrics, cache invalidation) happens exactly once per
// flash no matter how many requesters coalesced onto the job.
func (m *Manager) flashBoard(job flash.Job, binary []byte) (time.Duration, error) {
	oldGeom := m.board.MemGeometry()
	d, err := m.board.Configure(binary)
	if err != nil {
		return 0, err
	}
	if d == 0 {
		return 0, nil // raced an identical configure: no-op
	}
	m.mReconfigs.Inc()
	m.mReconfigHist.Observe(d.Seconds())
	// Reconfiguration is the memoization invalidation barrier: every
	// cached result was computed under the previous bitstream.
	if m.memo != nil {
		if n := m.memo.Clear(); n > 0 {
			m.mMemoInval.Add(float64(n))
			m.log.Debug("memo cache cleared on reconfiguration", "entries", n, "bitstream", job.Bitstream)
		}
	}
	// Cached device buffers survive a reflash only while the new design
	// addresses DDR the same way; a geometry change makes every resident
	// buffer unreachable garbage.
	if m.bufcache != nil && m.board.MemGeometry() != oldGeom {
		if n := m.bufcache.Invalidate(); n > 0 {
			m.mBufInval.Add(float64(n))
			m.log.Info("buffer cache invalidated: memory geometry changed",
				"entries", n, "bitstream", job.Bitstream)
		}
	}
	m.syncCacheGauges()
	m.syncBoardCounters()
	return d, nil
}

// Flash exposes the board's flash service (history, queue state, the
// /debug/flash handler).
func (m *Manager) Flash() *flash.Service { return m.flash }

// submit places a sealed task on the central queue. The item's cost is
// the task's operation count: a multi-op task charges its tenant
// proportionally under drr, matching the paper's observation that task
// length drives board occupancy.
func (m *Manager) submit(t *task) error {
	it := &sched.Item{
		Session:  t.sess.id,
		Tenant:   t.sess.clientName,
		Weight:   t.sess.weight,
		Cost:     int64(len(t.ops)),
		Deadline: t.deadline,
		Payload:  t,
	}
	// Alloc, not Begin: the task's flight is admitted by the worker's
	// CompleteWith in one locked pass; reserving the key costs one atomic.
	t.flight = m.flight.Alloc(obs.TraceID(t.trace))
	if err := m.queue.Push(it); err != nil {
		serr := ocl.Errf(ocl.ErrDeviceNotAvailable, "manager shutting down")
		m.flight.CompleteWith(t.flight, t.sess.clientName,
			[]flightrec.Event{{Kind: flightrec.KindFailure, Detail: "enqueue: manager shutting down"}},
			0, true, "manager shutting down")
		return serr
	}
	// The enqueued milestone (with the post-Push queue snapshot) is
	// recorded by the worker as part of the task's completion batch.
	m.mQueueDepth.Set(float64(m.queue.Len()))
	m.tenantMetric(t.sess.clientName).depth.Add(1)
	return nil
}

// Sessions reports the number of live sessions (diagnostics).
func (m *Manager) Sessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// String describes the manager for logs.
func (m *Manager) String() string {
	return fmt.Sprintf("manager(%s@%s)", m.cfg.DeviceID, m.cfg.Node)
}
