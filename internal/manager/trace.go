package manager

import (
	"net/http"
	"sync"
	"time"

	"blastfunction/internal/obs"
)

// TaskTrace is one completed task's execution record, kept in the
// manager's trace ring for operational debugging (which tenant ran what,
// when, for how long).
type TaskTrace struct {
	// Seq is a monotonically increasing task sequence number.
	Seq uint64 `json:"seq"`
	// Client is the owning function instance's name.
	Client string `json:"client"`
	// Ops is the number of operations in the task.
	Ops int `json:"ops"`
	// DeviceTime is the modelled board occupancy of the task.
	DeviceTime time.Duration `json:"device_ns"`
	// QueueWait is the time the task spent in the central queue before
	// the worker picked it — the per-task view of scheduling delay.
	QueueWait time.Duration `json:"queue_wait_ns"`
	// Failed marks tasks aborted by a failing operation.
	Failed bool `json:"failed,omitempty"`
	// CompletedAt is the wall-clock completion time.
	CompletedAt time.Time `json:"completed_at"`
}

// traceRing keeps the most recent task traces.
type traceRing struct {
	mu   sync.Mutex
	buf  []TaskTrace
	next int
	full bool
	seq  uint64
}

func newTraceRing(capacity int) *traceRing {
	if capacity <= 0 {
		capacity = 256
	}
	return &traceRing{buf: make([]TaskTrace, capacity)}
}

// add appends one trace, overwriting the oldest when full.
func (r *traceRing) add(t TaskTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	t.Seq = r.seq
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
}

// snapshot returns the retained traces, oldest first.
func (r *traceRing) snapshot() []TaskTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []TaskTrace
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// Traces returns the manager's recent task executions, oldest first.
func (m *Manager) Traces() []TaskTrace { return m.traces.snapshot() }

// TraceHandler serves the trace ring as JSON, for blastctl-style
// inspection of what recently ran on the board. ?n=K keeps the most
// recent K entries.
func (m *Manager) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obs.ServeTail(w, r, m.Traces())
	})
}

// Tracer exposes the manager's span recorder: the RPC layer and embedded
// deployments record manager-side stages of client-sampled traces into it.
func (m *Manager) Tracer() *obs.Tracer { return m.tracer }

// SpanHandler serves the manager's distributed-tracing span ring
// (/debug/spans). ?trace=<hex id> filters to one trace, ?n=K keeps the
// most recent K spans.
func (m *Manager) SpanHandler() http.Handler { return m.tracer.Handler() }
