package manager

import (
	"encoding/json"
	"net/http"
	"time"

	"blastfunction/internal/datacache"
	"blastfunction/internal/flightrec"
	"blastfunction/internal/ocl"
	"blastfunction/internal/wire"
)

// This file is the manager side of the data-plane reuse layer: the
// content-addressed device buffer cache behind CreateBuffer, the kernel
// memoization hook of the worker, and the /debug/cache stats view.

// createCachedBuffer serves a CreateBuffer carrying a content hash
// (proto >= wire.ProtoVersionReuse). Protocol:
//
//   - probe (hash, no payload): a resident entry with the same (hash,
//     size) yields a shared handle — the metadata-only RPC that makes
//     repeated inputs upload once per board. A miss answers ID 0 (session
//     handles start at 1) and the client re-sends with the payload.
//   - upload (hash + payload): the manager re-hashes the payload before
//     inserting, so a client cannot poison the shared cache with a false
//     hash claim and read another tenant's bytes back through it.
//
// Only full-size MemReadOnly payloads are cacheable: contents must be
// completely determined by (hash, size), and no one may write the shared
// bytes afterwards.
func (s *session) createCachedBuffer(m *Manager, req *wire.CreateBufferRequest) ([]byte, error) {
	if ocl.MemFlags(req.Flags) != ocl.MemReadOnly {
		return nil, ocl.Errf(ocl.ErrInvalidValue,
			"content hash on non-read-only buffer (flags %#x)", req.Flags)
	}
	key := datacache.BufferKey{Hash: req.ContentHash, Size: req.Size}
	if boardID, ok := m.bufcache.Acquire(key); ok {
		m.mBufHits.Inc()
		m.mBufSaved.Add(float64(req.Size))
		m.flight.Record(s.flight, flightrec.Event{Kind: flightrec.KindBufferHit})
		id := s.insertBuffer(bufferInfo{
			boardID: boardID, size: req.Size, flags: ocl.MemFlags(req.Flags),
			hash: req.ContentHash, shared: true,
		})
		m.syncCacheGauges()
		return encodeID(id), nil
	}
	if len(req.InitData) == 0 {
		return encodeID(0), nil // probe miss: client re-sends with payload
	}
	if int64(len(req.InitData)) != req.Size {
		return nil, ocl.Errf(ocl.ErrInvalidValue,
			"content-hashed init data of %d bytes must fill the %d-byte buffer",
			len(req.InitData), req.Size)
	}
	if datacache.ContentHash64(req.InitData) != req.ContentHash {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "content hash does not match payload")
	}
	boardID, err := m.board.Alloc(req.Size)
	if err != nil {
		return nil, err
	}
	if _, err := m.board.Write(boardID, 0, req.InitData); err != nil {
		m.board.Free(boardID)
		return nil, err
	}
	canonical, inserted := m.bufcache.Insert(key, boardID)
	if !inserted {
		// A racing session uploaded the same content first; its entry is
		// canonical and ours is a duplicate.
		m.board.Free(boardID)
	}
	m.mBufMisses.Inc()
	m.flight.Record(s.flight, flightrec.Event{Kind: flightrec.KindBufferMiss})
	id := s.insertBuffer(bufferInfo{
		boardID: canonical, size: req.Size, flags: ocl.MemFlags(req.Flags),
		hash: req.ContentHash, shared: true,
	})
	m.syncCacheGauges()
	return encodeID(id), nil
}

// dropBuffer returns one session buffer: shared handles decrement the
// cache reference (the bytes stay resident for future hits), private ones
// free board memory.
func (m *Manager) dropBuffer(b bufferInfo) error {
	if b.shared {
		m.bufcache.Release(datacache.BufferKey{Hash: b.hash, Size: b.size}, b.boardID)
		return nil
	}
	return m.board.Free(b.boardID)
}

// runKernelMemo executes one kernel operation through the memoization
// cache. The key is content-canonical: owner session (results are
// tenant-scoped), configured bitstream, kernel name, launch geometry, and
// the content of every argument — scalars by value, buffers by digest.
// Identical state always produces the same key, so re-invocations hit
// regardless of which buffers carry the content. On a hit the modified
// buffers are restored from snapshots at on-board DDR speed instead of
// re-running the kernel; the returned DeviceNanos is the board time the
// restore actually occupied.
func (m *Manager) runKernelMemo(t *task, o *op) (int64, error) {
	bitID := m.board.ConfiguredID()
	h := datacache.NewHasher()
	h.U64(t.sess.id)
	h.String(bitID)
	h.String(o.kernelName)
	h.U64(uint64(len(o.global)))
	for _, g := range o.global {
		h.I64(int64(g))
	}
	h.U64(uint64(len(o.local)))
	for _, l := range o.local {
		h.I64(int64(l))
	}
	h.U64(uint64(len(o.args)))
	preHash := make(map[int]uint64, len(o.args))
	for i, a := range o.args {
		if a.Kind == ocl.ArgBuffer {
			bh, err := m.board.ContentHash(a.BufferID)
			if err != nil {
				return 0, err // dangling buffer: same failure Run would report
			}
			h.U64(1)
			h.U64(bh)
			preHash[i] = bh
		} else {
			h.U64(2)
			h.Bytes(a.Scalar[:a.ScalarLen])
		}
	}
	key := h.Sum()

	if ent, ok := m.memo.Lookup(key); ok {
		var restore time.Duration
		for _, out := range ent.Outputs {
			d, err := m.board.RestoreBuffer(o.args[out.BoardArg].BufferID, out.Data)
			if err != nil {
				return 0, err
			}
			restore += d
		}
		m.mMemoHits.Inc()
		t.flightEvs = append(t.flightEvs, flightrec.Event{
			Kind: flightrec.KindMemoHit, Dur: restore, Detail: o.kernelName, Time: time.Now()})
		m.syncCacheGauges()
		return int64(restore), nil
	}

	d, err := m.board.Run(o.kernelName, o.args, o.global)
	if err != nil {
		return 0, err
	}
	ent := &datacache.MemoEntry{Owner: t.sess.id, Bitstream: bitID, DeviceNanos: int64(d)}
	store := true
	for i, a := range o.args {
		if a.Kind != ocl.ArgBuffer {
			continue
		}
		post, herr := m.board.ContentHash(a.BufferID)
		if herr != nil {
			store = false // buffer vanished mid-task: result not replayable
			break
		}
		if post != preHash[i] {
			snap, serr := m.board.SnapshotBuffer(a.BufferID)
			if serr != nil {
				store = false
				break
			}
			ent.Outputs = append(ent.Outputs, datacache.MemoOutput{BoardArg: i, Data: snap})
		}
	}
	if store {
		m.memo.Store(key, ent)
	}
	m.mMemoMisses.Inc()
	m.syncCacheGauges()
	return int64(d), nil
}

// invalidateMemoOwner drops a departing session's memoized results.
func (m *Manager) invalidateMemoOwner(sessionID uint64) {
	if m.memo == nil {
		return
	}
	if n := m.memo.InvalidateOwner(sessionID); n > 0 {
		m.mMemoInval.Add(float64(n))
		m.syncCacheGauges()
	}
}

// syncCacheGauges pushes the caches' resident sizes into the exported
// gauges.
func (m *Manager) syncCacheGauges() {
	if m.bufcache != nil {
		st := m.bufcache.Stats()
		m.gBufResident.Set(float64(st.ResidentBytes))
		m.gBufEntries.Set(float64(st.Entries))
	}
	if m.memo != nil {
		m.gMemoResident.Set(float64(m.memo.Stats().ResidentBytes))
	}
}

// CacheStats is the /debug/cache snapshot: both reuse caches plus the
// board's device-to-device copy counters, which together describe how much
// data the reuse layer kept off the client path.
type CacheStats struct {
	Device      string                `json:"device"`
	Node        string                `json:"node"`
	BufferCache datacache.BufferStats `json:"buffer_cache"`
	MemoEnabled bool                  `json:"memo_enabled"`
	MemoCache   datacache.MemoStats   `json:"memo_cache"`
	CopyOps     int64                 `json:"copy_ops"`
	CopyBytes   int64                 `json:"copy_bytes"`
}

// CacheStats snapshots the reuse layer.
func (m *Manager) CacheStats() CacheStats {
	st := CacheStats{Device: m.cfg.DeviceID, Node: m.cfg.Node}
	if m.bufcache != nil {
		st.BufferCache = m.bufcache.Stats()
	}
	if m.memo != nil {
		st.MemoEnabled = true
		st.MemoCache = m.memo.Stats()
	}
	bs := m.board.Stats()
	st.CopyOps = bs.CopyOps
	st.CopyBytes = bs.CopyBytes
	return st
}

// CacheStatsHandler serves CacheStats as JSON (the /debug/cache endpoint,
// consumed by blastctl top).
func (m *Manager) CacheStatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(m.CacheStats())
	})
}
