package manager

import "time"

// SweepLeases exposes lease sweeping so integration tests can force a
// session expiry at a chosen instant instead of waiting out real leases.
func (m *Manager) SweepLeases(now time.Time) { m.sweepLeases(now) }
