package manager_test

import (
	"bytes"
	"testing"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/manager"
	"blastfunction/internal/ocl"
	"blastfunction/internal/rpc"
	"blastfunction/internal/wire"
)

// These tests drive the manager with a bare rpc.Client instead of the remote
// library so notification FRAMES are observable: the coalescing contract is
// about what crosses the wire, which the library deliberately hides.

// helloNegotiate opens a session at an explicit protocol version and returns
// the revision the manager negotiated.
func helloNegotiate(t *testing.T, c *rpc.Client, name string, version uint32) uint32 {
	t.Helper()
	resp, err := hello(t, c, name, version)
	if err != nil {
		t.Fatal(err)
	}
	var h wire.HelloResponse
	h.Decode(wire.NewDecoder(resp))
	wire.PutBuf(resp)
	return h.Proto
}

// unaryCall encodes a request, performs the call and fails the test on error.
func unaryCall(t *testing.T, c *rpc.Client, m wire.Method, enc func(*wire.Encoder)) []byte {
	t.Helper()
	e := wire.NewEncoder(64)
	if enc != nil {
		enc(e)
	}
	resp, err := c.Call(m, e.Bytes())
	if err != nil {
		t.Fatalf("%v: %v", m, err)
	}
	return resp
}

// unaryID is unaryCall for methods answering with an IDResponse.
func unaryID(t *testing.T, c *rpc.Client, m wire.Method, enc func(*wire.Encoder)) uint64 {
	t.Helper()
	resp := unaryCall(t, c, m, enc)
	var id wire.IDResponse
	id.Decode(wire.NewDecoder(resp))
	wire.PutBuf(resp)
	return id.ID
}

// loopbackIDs is the handle set of a ready-to-run copy task.
type loopbackIDs struct {
	queue, in, out, kernel uint64
}

// setupLoopback builds context, queue, two buffers and the configured copy
// kernel over raw unary calls.
func setupLoopback(t *testing.T, c *rpc.Client, size int) loopbackIDs {
	t.Helper()
	ctx := unaryID(t, c, wire.MethodCreateContext, nil)
	var ids loopbackIDs
	ids.queue = unaryID(t, c, wire.MethodCreateQueue, func(e *wire.Encoder) {
		(&wire.IDRequest{ID: ctx}).Encode(e)
	})
	ids.in = unaryID(t, c, wire.MethodCreateBuffer, func(e *wire.Encoder) {
		(&wire.CreateBufferRequest{Context: ctx, Flags: uint32(ocl.MemReadOnly), Size: int64(size)}).Encode(e)
	})
	ids.out = unaryID(t, c, wire.MethodCreateBuffer, func(e *wire.Encoder) {
		(&wire.CreateBufferRequest{Context: ctx, Flags: uint32(ocl.MemWriteOnly), Size: int64(size)}).Encode(e)
	})
	resp := unaryCall(t, c, wire.MethodCreateProgram, func(e *wire.Encoder) {
		(&wire.CreateProgramRequest{Context: ctx, Binary: accel.LoopbackBitstream().Binary()}).Encode(e)
	})
	var prog wire.CreateProgramResponse
	prog.Decode(wire.NewDecoder(resp))
	wire.PutBuf(resp)
	wire.PutBuf(unaryCall(t, c, wire.MethodBuildProgram, func(e *wire.Encoder) {
		(&wire.IDRequest{ID: prog.ID}).Encode(e)
	}))
	ids.kernel = unaryID(t, c, wire.MethodCreateKernel, func(e *wire.Encoder) {
		(&wire.CreateKernelRequest{Program: prog.ID, Name: "copy"}).Encode(e)
	})
	n, err := ocl.PackArg(int32(size))
	if err != nil {
		t.Fatal(err)
	}
	for i, arg := range []ocl.Arg{ocl.BufferArg(ids.in), ocl.BufferArg(ids.out), n} {
		wire.PutBuf(unaryCall(t, c, wire.MethodSetKernelArg, func(e *wire.Encoder) {
			(&wire.SetKernelArgRequest{Kernel: ids.kernel, Index: uint32(i), Arg: arg}).Encode(e)
		}))
	}
	return ids
}

// sendOp fires one command-queue request (fire-and-forget, like the library).
func sendOp(t *testing.T, c *rpc.Client, m wire.Method, enc func(*wire.Encoder)) {
	t.Helper()
	e := wire.NewEncoder(64)
	enc(e)
	if err := c.Send(m, e.Bytes()); err != nil {
		t.Fatalf("%v: %v", m, err)
	}
}

// enqueueCopyTask submits the canonical 3-op task — inline write (tag 1),
// kernel launch (tag 2), inline read (tag 3) — and flushes the queue.
func enqueueCopyTask(t *testing.T, c *rpc.Client, ids loopbackIDs, payload []byte) {
	t.Helper()
	sendOp(t, c, wire.MethodEnqueueWrite, func(e *wire.Encoder) {
		(&wire.EnqueueWriteRequest{Tag: 1, Queue: ids.queue, Buffer: ids.in,
			Via: wire.ViaInline, Data: payload}).Encode(e)
	})
	sendOp(t, c, wire.MethodEnqueueKernel, func(e *wire.Encoder) {
		(&wire.EnqueueKernelRequest{Tag: 2, Queue: ids.queue, Kernel: ids.kernel}).Encode(e)
	})
	sendOp(t, c, wire.MethodEnqueueRead, func(e *wire.Encoder) {
		(&wire.EnqueueReadRequest{Tag: 3, Queue: ids.queue, Buffer: ids.out,
			Length: int64(len(payload)), Via: wire.ViaInline}).Encode(e)
	})
	sendOp(t, c, wire.MethodFlush, func(e *wire.Encoder) {
		(&wire.FlushRequest{Queue: ids.queue}).Encode(e)
	})
}

// noteFrame is one decoded notification frame as it crossed the wire.
type noteFrame struct {
	batch bool
	notes []wire.OpNotification
}

// drainTaskFrames reads notification frames until tags 1..3 all reach a
// terminal state, returning every frame with payloads copied out of the
// pooled buffers. Frames are decoded at the session's negotiated proto —
// a v1 session must receive the v1 field order, not merely unbatched
// frames, so decoding v1 bytes with the v1 layout is part of the check.
func drainTaskFrames(t *testing.T, c *rpc.Client, proto uint32) []noteFrame {
	t.Helper()
	terminal := map[uint64]bool{1: false, 2: false, 3: false}
	remaining := len(terminal)
	var frames []noteFrame
	deadline := time.After(10 * time.Second)
	for remaining > 0 {
		select {
		case note, ok := <-c.Notifications():
			if !ok {
				t.Fatalf("notification channel closed with %d frames seen", len(frames))
			}
			d := wire.NewDecoder(note.Payload)
			count := 1
			if note.Batch {
				count = int(d.U32())
			}
			f := noteFrame{batch: note.Batch}
			for i := 0; i < count; i++ {
				var n wire.OpNotification
				if proto >= wire.ProtoVersionBatch {
					n.Decode(d)
				} else {
					n.DecodeV1(d)
				}
				if d.Err() != nil {
					t.Fatalf("frame %d note %d: %v", len(frames), i, d.Err())
				}
				n.Data = append([]byte(nil), n.Data...)
				if n.State == wire.OpComplete || n.State == wire.OpFailed {
					if done, tracked := terminal[n.Tag]; tracked && !done {
						terminal[n.Tag] = true
						remaining--
					}
				}
				f.notes = append(f.notes, n)
			}
			if d.Remaining() != 0 {
				t.Fatalf("frame %d: %d undecoded bytes (layout mismatch?)", len(frames), d.Remaining())
			}
			wire.PutBuf(note.Payload)
			frames = append(frames, f)
		case <-deadline:
			t.Fatalf("timed out; %d frames seen, unfinished tags %v", len(frames), terminal)
		}
	}
	return frames
}

// requireCopyResult checks every op completed and the read (tag 3) carried
// the payload back.
func requireCopyResult(t *testing.T, frames []noteFrame, payload []byte) {
	t.Helper()
	var readData []byte
	for _, f := range frames {
		for _, n := range f.notes {
			if n.State == wire.OpFailed {
				t.Fatalf("op %d failed: %s", n.Tag, n.Error)
			}
			if n.Tag == 3 && n.State == wire.OpComplete {
				readData = n.Data
			}
		}
	}
	if !bytes.Equal(readData, payload) {
		t.Fatalf("read back %d bytes, want %d matching bytes", len(readData), len(payload))
	}
}

func TestTaskNotificationsCoalesced(t *testing.T) {
	rig := newRig(t, manager.Config{})
	c := rawClient(t, rig)
	if proto := helloNegotiate(t, c, "batch-v2", wire.ProtoVersion); proto < wire.ProtoVersionBatch {
		t.Fatalf("negotiated proto %d, want >= %d", proto, wire.ProtoVersionBatch)
	}
	payload := bytes.Repeat([]byte("coalesce"), 512)
	ids := setupLoopback(t, c, len(payload))
	enqueueCopyTask(t, c, ids, payload)
	frames := drainTaskFrames(t, c, wire.ProtoVersion)

	// The tentpole's headline number: a 3-op task used to cost 9 frames
	// (Accepted, Running, Complete per op); coalescing folds it into the
	// Accepted batch at Flush plus one completion batch at task end.
	if len(frames) > 2 {
		t.Fatalf("3-op task emitted %d notification frames, want at most 2", len(frames))
	}
	total := 0
	for i, f := range frames {
		if !f.batch {
			t.Errorf("frame %d is a single-notification frame; proto v2 must batch", i)
		}
		total += len(f.notes)
	}
	if total != 9 {
		t.Errorf("frames carry %d notifications, want all 9", total)
	}
	requireCopyResult(t, frames, payload)
}

// TestReleaseQueueFailsUnflushedOps: a batch-capable peer defers Accepted
// acknowledgements to flush time, so releasing a queue with unflushed
// operations must terminate those events explicitly — silence would leave
// the client's tags dangling until connection teardown.
func TestReleaseQueueFailsUnflushedOps(t *testing.T) {
	rig := newRig(t, manager.Config{})
	c := rawClient(t, rig)
	if proto := helloNegotiate(t, c, "dropped-queue", wire.ProtoVersion); proto < wire.ProtoVersionBatch {
		t.Fatalf("negotiated proto %d, want >= %d", proto, wire.ProtoVersionBatch)
	}
	payload := bytes.Repeat([]byte("drop"), 16)
	ids := setupLoopback(t, c, len(payload))
	sendOp(t, c, wire.MethodEnqueueWrite, func(e *wire.Encoder) {
		(&wire.EnqueueWriteRequest{Tag: 1, Queue: ids.queue, Buffer: ids.in,
			Via: wire.ViaInline, Data: payload}).Encode(e)
	})
	sendOp(t, c, wire.MethodEnqueueKernel, func(e *wire.Encoder) {
		(&wire.EnqueueKernelRequest{Tag: 2, Queue: ids.queue, Kernel: ids.kernel}).Encode(e)
	})
	wire.PutBuf(unaryCall(t, c, wire.MethodReleaseQueue, func(e *wire.Encoder) {
		(&wire.IDRequest{ID: ids.queue}).Encode(e)
	}))

	states := map[uint64]wire.OpState{}
	deadline := time.After(10 * time.Second)
	for len(states) < 2 {
		select {
		case note, ok := <-c.Notifications():
			if !ok {
				t.Fatalf("notification channel closed with states %v", states)
			}
			d := wire.NewDecoder(note.Payload)
			count := 1
			if note.Batch {
				count = int(d.U32())
			}
			for i := 0; i < count; i++ {
				var n wire.OpNotification
				n.Decode(d)
				if d.Err() != nil {
					t.Fatalf("note %d: %v", i, d.Err())
				}
				states[n.Tag] = n.State
			}
			wire.PutBuf(note.Payload)
		case <-deadline:
			t.Fatalf("timed out waiting for dropped-op notifications; states %v", states)
		}
	}
	for tag := uint64(1); tag <= 2; tag++ {
		if states[tag] != wire.OpFailed {
			t.Errorf("tag %d state = %v, want %v", tag, states[tag], wire.OpFailed)
		}
	}
}

func TestPreBatchPeerInterop(t *testing.T) {
	rig := newRig(t, manager.Config{})
	c := rawClient(t, rig)
	if proto := helloNegotiate(t, c, "legacy-v1", 1); proto != 1 {
		t.Fatalf("negotiated proto %d, want 1", proto)
	}
	payload := bytes.Repeat([]byte("legacy!!"), 256)
	ids := setupLoopback(t, c, len(payload))
	enqueueCopyTask(t, c, ids, payload)
	frames := drainTaskFrames(t, c, 1)

	// A pre-batching peer must see the exact v1 wire behaviour: one frame
	// per notification, never a batch frame.
	if len(frames) != 9 {
		t.Fatalf("v1 peer got %d notification frames, want 9", len(frames))
	}
	seq := map[uint64][]wire.OpState{}
	for i, f := range frames {
		if f.batch {
			t.Fatalf("frame %d is a batch frame; those are gated on proto >= %d", i, wire.ProtoVersionBatch)
		}
		if len(f.notes) != 1 {
			t.Fatalf("frame %d carries %d notifications", i, len(f.notes))
		}
		n := f.notes[0]
		seq[n.Tag] = append(seq[n.Tag], n.State)
	}
	want := []wire.OpState{wire.OpAccepted, wire.OpRunning, wire.OpComplete}
	for tag := uint64(1); tag <= 3; tag++ {
		got := seq[tag]
		if len(got) != len(want) {
			t.Fatalf("tag %d states = %v, want %v", tag, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tag %d states = %v, want %v", tag, got, want)
			}
		}
	}
	requireCopyResult(t, frames, payload)
}
