package manager

import (
	"fmt"
	"time"

	"blastfunction/internal/flightrec"
	"blastfunction/internal/logx"
	"blastfunction/internal/model"
	"blastfunction/internal/obs"
	"blastfunction/internal/ocl"
	"blastfunction/internal/rpc"
	"blastfunction/internal/wire"
)

// opKind discriminates task operations.
type opKind uint8

const (
	opWrite opKind = iota + 1
	opRead
	opKernel
	opCopy
)

// String names the kind for span notes and logs.
func (k opKind) String() string {
	switch k {
	case opWrite:
		return "write"
	case opRead:
		return "read"
	case opKernel:
		return "kernel"
	case opCopy:
		return "copy"
	}
	return "unknown"
}

// op is one operation inside a task. Kernel arguments are snapshotted at
// enqueue time, as clEnqueueNDRangeKernel semantics require.
type op struct {
	kind opKind
	tag  uint64

	// Transfers. Copies use boardBuf/offset as their source and
	// copyDst/dstOff as their destination.
	boardBuf uint64
	offset   int64
	length   int64
	via      wire.DataVia
	data     []byte // inline write payload; aliases the retained request frame
	shmOff   int64
	copyDst  uint64
	dstOff   int64

	// Kernel launches.
	kernelName string
	args       []ocl.Arg
	global     []int
	local      []int

	// Tracing identity carried from the client's enqueue (zero when
	// untraced): span is the client-side "call" span of this operation, so
	// the manager's per-op execution span parents under it.
	trace uint64
	span  uint64
}

// task is the atomic unit of execution: the operations a client enqueued
// on one command queue between two flushes. The worker runs its operations
// back to back on the FPGA, which keeps one client's read-kernel-write
// sequences from interleaving with another tenant's.
type task struct {
	sess *session
	conn *rpc.Conn
	ops  []op
	// deadline is the client's soft completion hint (zero when unhinted);
	// only the deadline discipline orders by it.
	deadline time.Time
	// queueWait is the time the task spent in the central queue, stamped
	// by the worker at pop.
	queueWait time.Duration
	// trace/span carry the client's sampled trace identity from the Flush
	// frame (zero when untraced); span is the task's root span.
	trace uint64
	span  uint64
	// flight keys the task's flight-recorder skeleton: the trace ID when
	// sampled, a synthetic local key otherwise (assigned at submit).
	flight obs.TraceID
	// flightEvs accumulates the task's flight milestones lock-free while
	// the worker runs it (backed by a per-worker scratch array); they are
	// applied in one batch by CompleteWith at task completion so the
	// always-on recorder costs one mutex acquisition per task, not one
	// per milestone. Events carry their own timestamps, so the recorded
	// timeline is unchanged.
	flightEvs []flightrec.Event
	// failCause is the first operation failure's message, carried to the
	// flight's terminal milestone.
	failCause string
}

// releaseOps returns the pooled inline write payloads of operations that
// will never reach the board (dropped queues, failed submissions, aborted
// task tails) back to the buffer pool. Executed writes release their
// payload inside runOp instead.
func releaseOps(ops []op) {
	for i := range ops {
		if ops[i].kind == opWrite && ops[i].via == wire.ViaInline {
			wire.PutBuf(ops[i].data)
			ops[i].data = nil
		}
	}
}

func (s *session) enqueueWrite(m *Manager, c *rpc.Conn, d *wire.Decoder) ([]byte, error) {
	var req wire.EnqueueWriteRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed EnqueueWrite: %v", err)
	}
	q, err := s.queue(req.Queue)
	if err != nil {
		s.sendFail(c, req.Tag, err)
		return nil, nil
	}
	buf, err := s.lookupBuffer(req.Buffer)
	if err != nil {
		s.sendFail(c, req.Tag, err)
		return nil, nil
	}
	if buf.shared {
		s.sendFail(c, req.Tag, ocl.Errf(ocl.ErrInvalidOperation,
			"buffer %d is shared through the content cache and immutable", req.Buffer))
		return nil, nil
	}
	o := op{
		kind:     opWrite,
		tag:      req.Tag,
		boardBuf: buf.boardID,
		offset:   req.Offset,
		via:      req.Via,
		trace:    req.TraceID,
		span:     req.SpanID,
	}
	switch req.Via {
	case wire.ViaInline:
		// req.Data aliases the request frame. Keep the frame alive past
		// this handler — the worker releases it once the bytes reach the
		// board (runOp) or the operation is dropped (releaseOps).
		c.RetainRequestPayload()
		o.data = req.Data
		o.length = int64(len(req.Data))
	case wire.ViaShm:
		if s.segment() == nil {
			s.sendFail(c, req.Tag, ocl.Errf(ocl.ErrInvalidOperation, "no shared-memory segment negotiated"))
			return nil, nil
		}
		o.shmOff = req.ShmOff
		o.length = req.ShmLen
	default:
		s.sendFail(c, req.Tag, ocl.Errf(ocl.ErrInvalidValue, "data path %d", req.Via))
		return nil, nil
	}
	s.appendOp(c, q, o)
	return nil, nil
}

func (s *session) enqueueRead(m *Manager, c *rpc.Conn, d *wire.Decoder) ([]byte, error) {
	var req wire.EnqueueReadRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed EnqueueRead: %v", err)
	}
	q, err := s.queue(req.Queue)
	if err != nil {
		s.sendFail(c, req.Tag, err)
		return nil, nil
	}
	buf, err := s.lookupBuffer(req.Buffer)
	if err != nil {
		s.sendFail(c, req.Tag, err)
		return nil, nil
	}
	if req.Via == wire.ViaShm && s.segment() == nil {
		s.sendFail(c, req.Tag, ocl.Errf(ocl.ErrInvalidOperation, "no shared-memory segment negotiated"))
		return nil, nil
	}
	s.appendOp(c, q, op{
		kind:     opRead,
		tag:      req.Tag,
		boardBuf: buf.boardID,
		offset:   req.Offset,
		length:   req.Length,
		via:      req.Via,
		shmOff:   req.ShmOff,
		trace:    req.TraceID,
		span:     req.SpanID,
	})
	return nil, nil
}

func (s *session) enqueueKernel(m *Manager, c *rpc.Conn, d *wire.Decoder) ([]byte, error) {
	var req wire.EnqueueKernelRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed EnqueueKernel: %v", err)
	}
	q, err := s.queue(req.Queue)
	if err != nil {
		s.sendFail(c, req.Tag, err)
		return nil, nil
	}
	s.mu.Lock()
	k, ok := s.kernels[req.Kernel]
	if !ok {
		s.mu.Unlock()
		s.sendFail(c, req.Tag, ocl.Errf(ocl.ErrInvalidKernel, "kernel %d", req.Kernel))
		return nil, nil
	}
	for i, set := range k.set {
		if !set {
			name := k.name
			s.mu.Unlock()
			s.sendFail(c, req.Tag, ocl.Errf(ocl.ErrInvalidKernelArgs,
				"kernel %q: argument %d not set", name, i))
			return nil, nil
		}
	}
	args := append([]ocl.Arg(nil), k.args...)
	name := k.name
	s.mu.Unlock()

	toInts := func(v []int64) []int {
		if v == nil {
			return nil
		}
		out := make([]int, len(v))
		for i, x := range v {
			out[i] = int(x)
		}
		return out
	}
	s.appendOp(c, q, op{
		kind:       opKernel,
		tag:        req.Tag,
		kernelName: name,
		args:       args,
		global:     toInts(req.Global),
		local:      toInts(req.Local),
		trace:      req.TraceID,
		span:       req.SpanID,
	})
	return nil, nil
}

// enqueueCopy joins a device-to-device buffer copy to the client's current
// task (proto >= wire.ProtoVersionReuse). Ranges are validated here against
// the session's buffer sizes so a bad chain fails at enqueue, not on the
// board.
func (s *session) enqueueCopy(m *Manager, c *rpc.Conn, d *wire.Decoder) ([]byte, error) {
	var req wire.EnqueueCopyRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed EnqueueCopy: %v", err)
	}
	q, err := s.queue(req.Queue)
	if err != nil {
		s.sendFail(c, req.Tag, err)
		return nil, nil
	}
	src, err := s.lookupBuffer(req.SrcBuffer)
	if err != nil {
		s.sendFail(c, req.Tag, err)
		return nil, nil
	}
	dst, err := s.lookupBuffer(req.DstBuffer)
	if err != nil {
		s.sendFail(c, req.Tag, err)
		return nil, nil
	}
	if dst.shared {
		s.sendFail(c, req.Tag, ocl.Errf(ocl.ErrInvalidOperation,
			"buffer %d is shared through the content cache and immutable", req.DstBuffer))
		return nil, nil
	}
	if req.Length < 0 ||
		req.SrcOffset < 0 || req.SrcOffset+req.Length > src.size ||
		req.DstOffset < 0 || req.DstOffset+req.Length > dst.size {
		s.sendFail(c, req.Tag, ocl.Errf(ocl.ErrInvalidValue,
			"copy range: src off=%d dst off=%d len=%d (src %d, dst %d bytes)",
			req.SrcOffset, req.DstOffset, req.Length, src.size, dst.size))
		return nil, nil
	}
	s.appendOp(c, q, op{
		kind:     opCopy,
		tag:      req.Tag,
		boardBuf: src.boardID,
		offset:   req.SrcOffset,
		copyDst:  dst.boardID,
		dstOff:   req.DstOffset,
		length:   req.Length,
		trace:    req.TraceID,
		span:     req.SpanID,
	})
	return nil, nil
}

// appendOp adds the operation to the queue's current task and acknowledges
// it (the FIRST step of the client's event state machine). For batch-capable
// peers the acknowledgement is deferred: all of a task's Accepted
// notifications leave as one batch frame at flush time.
func (s *session) appendOp(c *rpc.Conn, q *queueState, o op) {
	s.mu.Lock()
	q.cur = append(q.cur, o)
	if s.proto >= wire.ProtoVersionBatch {
		q.accepted = append(q.accepted, o.tag)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	notifySingle(c, s.proto, &wire.OpNotification{Tag: o.tag, State: wire.OpAccepted})
}

// flush seals the queue's current task and submits it to the central FIFO
// queue. An empty task is a no-op.
func (s *session) flush(m *Manager, c *rpc.Conn, d *wire.Decoder) ([]byte, error) {
	var req wire.FlushRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed Flush: %v", err)
	}
	q, err := s.queue(req.Queue)
	if err != nil {
		return nil, nil // nothing to fail: flush carries no tag
	}
	s.mu.Lock()
	ops := q.cur
	q.cur = nil
	accepted := q.accepted
	q.accepted = nil
	s.mu.Unlock()
	if len(accepted) > 0 {
		// One frame acknowledges every operation of the task.
		e := wire.GetEncoder(8 + 34*len(accepted))
		e.U32(uint32(len(accepted)))
		for _, tag := range accepted {
			(&wire.OpNotification{Tag: tag, State: wire.OpAccepted}).EncodeHead(e)
		}
		c.NotifyBatch(e.Bytes()) // best effort
		e.Release()
	}
	if len(ops) == 0 {
		return nil, nil
	}
	// A trailing deadline hint becomes absolute here: the hint is relative
	// to submission, and the central queue compares absolute deadlines.
	var deadline time.Time
	if req.DeadlineMillis > 0 {
		deadline = time.Now().Add(time.Duration(req.DeadlineMillis) * time.Millisecond)
	}
	if err := m.submit(&task{sess: s, conn: c, ops: ops, deadline: deadline,
		trace: req.TraceID, span: req.SpanID}); err != nil {
		for _, o := range ops {
			s.sendFail(c, o.tag, err)
		}
		releaseOps(ops)
	}
	return nil, nil
}

// notifySingle pushes one per-operation notification frame — the pre-batch
// (proto 1) notification path, also used for failures outside any task.
// The encoding follows the session's negotiated revision: pre-batch peers
// decode the original v1 field order (Data mid-message), so they must
// receive exactly that layout, not just unbatched frames.
func notifySingle(c *rpc.Conn, proto uint32, n *wire.OpNotification) {
	if proto < wire.ProtoVersionBatch {
		e := wire.GetEncoder(64 + len(n.Error) + len(n.Data))
		n.EncodeV1(e)
		c.Notify(e.Bytes()) // best effort: the client may already be gone
		e.Release()
		return
	}
	e := wire.GetEncoder(64 + len(n.Error))
	n.EncodeHead(e)
	c.Notify(e.Bytes(), n.Data) // best effort
	e.Release()
}

// notifyBatcher accumulates the notifications a task emits and sends them
// as one frameNotifyBatch at the end of the task. Notification heads are
// encoded into a single pooled buffer as they arrive; Data payloads stay
// where they are and ride out as their own vectored-write segments, so a
// read result is never copied between the board and the socket. For
// pre-batch peers every add degenerates to an immediate single frame.
type notifyBatcher struct {
	c     *rpc.Conn
	proto uint32 // negotiated session revision; batching requires ProtoVersionBatch

	e     *wire.Encoder
	parts []notifyPart
}

type notifyPart struct {
	metaEnd int    // end offset of this notification's head in e's buffer
	data    []byte // payload segment following the head, if any
	own     bool   // release data to the pool once the frame is written
}

// add appends one notification. If own is set, the batcher assumes
// ownership of n.Data and releases it after the wire write.
func (nb *notifyBatcher) add(n *wire.OpNotification, own bool) {
	if nb.proto < wire.ProtoVersionBatch {
		notifySingle(nb.c, nb.proto, n)
		if own {
			wire.PutBuf(n.Data)
		}
		return
	}
	if nb.e == nil {
		nb.e = wire.GetEncoder(256)
		nb.e.U32(0) // notification count, patched in flush
	}
	n.EncodeHead(nb.e)
	nb.parts = append(nb.parts, notifyPart{metaEnd: nb.e.Len(), data: n.Data, own: own})
}

// flush seals and writes the batch frame, then releases owned payloads.
func (nb *notifyBatcher) flush() {
	if nb.e == nil {
		return
	}
	nb.e.SetU32(0, uint32(len(nb.parts)))
	buf := nb.e.Bytes()
	segs := make([][]byte, 0, 2*len(nb.parts))
	prev := 0
	for _, p := range nb.parts {
		segs = append(segs, buf[prev:p.metaEnd])
		prev = p.metaEnd
		if len(p.data) > 0 {
			segs = append(segs, p.data)
		}
	}
	nb.c.NotifyBatch(segs...) // best effort
	for _, p := range nb.parts {
		if p.own {
			wire.PutBuf(p.data)
		}
	}
	nb.parts = nb.parts[:0]
	nb.e.Release()
	nb.e = nil
}

// runTask executes one task's operations back to back on the FPGA.
// A failing operation aborts the rest of the task: the queue is in-order,
// so later operations would observe inconsistent state. All of the task's
// progress notifications leave as a single batch frame (for batch-capable
// peers) once the task finishes.
// runTask executes one popped task and reports whether any of its
// operations failed (the availability SLI counts failed tasks).
func (m *Manager) runTask(t *task) (failedTask bool) {
	if t.sess.expired.Load() {
		// The lease sweeper reclaimed this session between submit and
		// execution: its buffers are freed, so running would fault.
		// Fail the whole task without occupying the board — this is how
		// expiry reclaims in-flight task slots from the central queue.
		err := ocl.Errf(ocl.ErrDeviceNotAvailable, "session lease expired")
		for i := range t.ops {
			t.sess.sendFail(t.conn, t.ops[i].tag, err) // best effort: conn is likely closed
		}
		releaseOps(t.ops)
		t.failCause = "session lease expired"
		t.flightEvs = append(t.flightEvs, flightrec.Event{
			Kind: flightrec.KindFailure, Detail: t.failCause, Time: time.Now()})
		return true
	}
	m.mTasks.Inc()
	var taskDevice time.Duration
	cost := m.board.Cost()
	scale := m.board.Config().TimeScale
	// Control-plane overhead of the flushed task (calibrated; the real
	// wire cost of this reproduction is far below hardware-era gRPC).
	if scale > 0 {
		time.Sleep(time.Duration(float64(cost.TaskControlOverhead(len(t.ops))) * scale))
	}
	nb := notifyBatcher{
		c:     t.conn,
		proto: t.sess.proto,
		parts: make([]notifyPart, 0, 2*len(t.ops)),
	}
	failed := false
	var abortErr error
	// The flight recorder is always on, so stage clocks run whether or
	// not the task was sampled (the recorder-overhead benchmark gates the
	// cost of these reads at ≤2% of a live round trip).
	execStart := time.Now()
	for i := range t.ops {
		o := &t.ops[i]
		if failed {
			if o.kind == opWrite && o.via == wire.ViaInline {
				wire.PutBuf(o.data)
				o.data = nil
			}
			nb.add(&wire.OpNotification{
				Tag:    o.tag,
				State:  wire.OpFailed,
				Status: int32(ocl.ErrInvalidOperation),
				Error:  "aborted: earlier operation in task failed: " + abortErr.Error(),
			}, false)
			continue
		}
		nb.add(&wire.OpNotification{Tag: o.tag, State: wire.OpRunning}, false)
		opStart := time.Now()
		n, ownData, err := m.runOp(t, o, cost, scale)
		if o.trace != 0 {
			// Per-op board execution, parented under the client's "call"
			// span so the timeline nests device time inside the call.
			m.tracer.End(obs.TraceID(o.trace), m.tracer.NewSpan(), obs.SpanID(o.span),
				"op", o.kind.String(), opStart)
		}
		if o.kind == opWrite {
			// Device ingest time is the manager's share of the "upload"
			// wait-breakdown stage (the client records its wire share).
			opEnd := time.Now()
			t.flightEvs = append(t.flightEvs, flightrec.Event{
				Kind: flightrec.KindUpload, Dur: opEnd.Sub(opStart), Detail: "device-write", Time: opEnd})
		}
		m.mOps.Inc()
		if n != nil {
			taskDevice += time.Duration(n.DeviceNanos)
		}
		if err != nil {
			failed, abortErr = true, err
			t.failCause = o.kind.String() + ": " + err.Error()
			t.flightEvs = append(t.flightEvs, flightrec.Event{
				Kind: flightrec.KindFailure, Detail: t.failCause, Time: time.Now()})
			m.log.Warn("task operation failed",
				"client", t.sess.clientName, "op", o.kind.String(), "err", err,
				"trace", obs.TraceID(t.trace))
			nb.add(&wire.OpNotification{
				Tag:    o.tag,
				State:  wire.OpFailed,
				Status: int32(ocl.StatusOf(err)),
				Error:  err.Error(),
			}, false)
			continue
		}
		nb.add(n, ownData)
	}
	if t.trace != 0 {
		m.tracer.End(obs.TraceID(t.trace), m.tracer.NewSpan(), obs.SpanID(t.span),
			"execute", "", execStart)
	}
	notifyStart := time.Now()
	t.flightEvs = append(t.flightEvs, flightrec.Event{
		Kind: flightrec.KindExecute, Dur: notifyStart.Sub(execStart),
		Detail: fmt.Sprintf("%d ops", len(t.ops)), Time: notifyStart})
	nb.flush()
	if t.trace != 0 {
		m.tracer.End(obs.TraceID(t.trace), m.tracer.NewSpan(), obs.SpanID(t.span),
			"notify", "", notifyStart)
	}
	notifyEnd := time.Now()
	t.flightEvs = append(t.flightEvs, flightrec.Event{
		Kind: flightrec.KindNotify, Dur: notifyEnd.Sub(notifyStart), Time: notifyEnd})
	m.mTaskHist.Observe(taskDevice.Seconds())
	tm := m.tenantMetric(t.sess.clientName)
	tm.tasks.Inc()
	tm.deviceSec.Add(taskDevice.Seconds())
	tm.deviceNS.Add(int64(taskDevice))
	m.traces.add(TaskTrace{
		Client:      t.sess.clientName,
		Ops:         len(t.ops),
		DeviceTime:  taskDevice,
		QueueWait:   t.queueWait,
		Failed:      failed,
		CompletedAt: time.Now(),
	})
	// Hot path: one nil/level check when logging is off or above debug.
	if m.log.Enabled(logx.LevelDebug) {
		m.log.Debug("task executed",
			"client", t.sess.clientName, "ops", len(t.ops),
			"device_time", taskDevice, "queue_wait", t.queueWait,
			"failed", failed, "trace", obs.TraceID(t.trace))
	}
	return failed
}

// runOp executes one operation and builds its completion notification.
// ownData reports whether n.Data is a pooled buffer the caller must
// release after the notification is written.
func (m *Manager) runOp(t *task, o *op, cost *model.CostModel, scale float64) (n *wire.OpNotification, ownData bool, err error) {
	n = &wire.OpNotification{Tag: o.tag, State: wire.OpComplete}
	sleepHost := func(d time.Duration) {
		if scale > 0 && d > 0 {
			time.Sleep(time.Duration(float64(d) * scale))
		}
	}
	switch o.kind {
	case opWrite:
		var src []byte
		switch o.via {
		case wire.ViaInline:
			src = o.data
			sleepHost(cost.GRPCDataOverhead(o.length))
		case wire.ViaShm:
			seg := t.sess.segment()
			if seg == nil {
				return nil, false, ocl.Errf(ocl.ErrInvalidOperation, "shared-memory segment vanished")
			}
			rng, rerr := seg.Range(o.shmOff, o.length)
			if rerr != nil {
				return nil, false, ocl.Errf(ocl.ErrInvalidValue, "shm write range: %v", rerr)
			}
			src = rng
			sleepHost(cost.ShmDataOverhead(o.length))
		}
		d, werr := m.board.Write(o.boardBuf, o.offset, src)
		if o.via == wire.ViaInline {
			// The retained request frame is consumed: the bytes are on the
			// board (or the write failed and they never will be).
			wire.PutBuf(o.data)
			o.data = nil
		}
		if werr != nil {
			return nil, false, werr
		}
		n.DeviceNanos = int64(d)
		m.mBytesIn.Add(float64(o.length))
	case opRead:
		switch o.via {
		case wire.ViaInline:
			dst := wire.GetBuf(int(o.length))
			d, rerr := m.board.Read(o.boardBuf, o.offset, dst)
			if rerr != nil {
				wire.PutBuf(dst)
				return nil, false, rerr
			}
			sleepHost(cost.GRPCDataOverhead(o.length))
			n.Data = dst
			n.DeviceNanos = int64(d)
			ownData = true
		case wire.ViaShm:
			seg := t.sess.segment()
			if seg == nil {
				return nil, false, ocl.Errf(ocl.ErrInvalidOperation, "shared-memory segment vanished")
			}
			dst, rerr := seg.Range(o.shmOff, o.length)
			if rerr != nil {
				return nil, false, ocl.Errf(ocl.ErrInvalidValue, "shm read range: %v", rerr)
			}
			d, rerr := m.board.Read(o.boardBuf, o.offset, dst)
			if rerr != nil {
				return nil, false, rerr
			}
			sleepHost(cost.ShmDataOverhead(o.length))
			n.ShmLen = o.length
			n.DeviceNanos = int64(d)
		default:
			return nil, false, ocl.Errf(ocl.ErrInvalidValue, "data path %d", o.via)
		}
		m.mBytesOut.Add(float64(o.length))
	case opKernel:
		if m.memo != nil {
			dn, merr := m.runKernelMemo(t, o)
			if merr != nil {
				return nil, false, merr
			}
			n.DeviceNanos = dn
		} else {
			d, kerr := m.board.Run(o.kernelName, o.args, o.global)
			if kerr != nil {
				return nil, false, kerr
			}
			n.DeviceNanos = int64(d)
		}
		m.mKernels.Inc()
	case opCopy:
		// Device-to-device: the bytes stay on the board, so neither the
		// bytes-in nor bytes-out series moves — that absence is the
		// zero-copy property the chaining benchmark pins.
		d, cerr := m.board.Copy(o.boardBuf, o.copyDst, o.offset, o.dstOff, o.length)
		if cerr != nil {
			return nil, false, cerr
		}
		n.DeviceNanos = int64(d)
		m.mCopies.Inc()
		m.mCopyBytes.Add(float64(o.length))
	default:
		return nil, false, ocl.Errf(ocl.ErrInvalidOperation, "unknown op kind %d", o.kind)
	}
	return n, ownData, nil
}
