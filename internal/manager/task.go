package manager

import (
	"time"

	"blastfunction/internal/model"
	"blastfunction/internal/ocl"
	"blastfunction/internal/rpc"
	"blastfunction/internal/wire"
)

// opKind discriminates task operations.
type opKind uint8

const (
	opWrite opKind = iota + 1
	opRead
	opKernel
)

// op is one operation inside a task. Kernel arguments are snapshotted at
// enqueue time, as clEnqueueNDRangeKernel semantics require.
type op struct {
	kind opKind
	tag  uint64

	// Transfers.
	boardBuf uint64
	offset   int64
	length   int64
	via      wire.DataVia
	data     []byte // inline write payload
	shmOff   int64

	// Kernel launches.
	kernelName string
	args       []ocl.Arg
	global     []int
	local      []int
}

// task is the atomic unit of execution: the operations a client enqueued
// on one command queue between two flushes. The worker runs its operations
// back to back on the FPGA, which keeps one client's read-kernel-write
// sequences from interleaving with another tenant's.
type task struct {
	sess *session
	conn *rpc.Conn
	ops  []op
}

func (s *session) enqueueWrite(m *Manager, c *rpc.Conn, d *wire.Decoder) ([]byte, error) {
	var req wire.EnqueueWriteRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed EnqueueWrite: %v", err)
	}
	q, err := s.queue(req.Queue)
	if err != nil {
		sendFail(c, req.Tag, err)
		return nil, nil
	}
	buf, err := s.lookupBuffer(req.Buffer)
	if err != nil {
		sendFail(c, req.Tag, err)
		return nil, nil
	}
	o := op{
		kind:     opWrite,
		tag:      req.Tag,
		boardBuf: buf.boardID,
		offset:   req.Offset,
		via:      req.Via,
	}
	switch req.Via {
	case wire.ViaInline:
		o.data = req.Data
		o.length = int64(len(req.Data))
	case wire.ViaShm:
		if s.segment() == nil {
			sendFail(c, req.Tag, ocl.Errf(ocl.ErrInvalidOperation, "no shared-memory segment negotiated"))
			return nil, nil
		}
		o.shmOff = req.ShmOff
		o.length = req.ShmLen
	default:
		sendFail(c, req.Tag, ocl.Errf(ocl.ErrInvalidValue, "data path %d", req.Via))
		return nil, nil
	}
	s.appendOp(m, c, q, o)
	return nil, nil
}

func (s *session) enqueueRead(m *Manager, c *rpc.Conn, d *wire.Decoder) ([]byte, error) {
	var req wire.EnqueueReadRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed EnqueueRead: %v", err)
	}
	q, err := s.queue(req.Queue)
	if err != nil {
		sendFail(c, req.Tag, err)
		return nil, nil
	}
	buf, err := s.lookupBuffer(req.Buffer)
	if err != nil {
		sendFail(c, req.Tag, err)
		return nil, nil
	}
	if req.Via == wire.ViaShm && s.segment() == nil {
		sendFail(c, req.Tag, ocl.Errf(ocl.ErrInvalidOperation, "no shared-memory segment negotiated"))
		return nil, nil
	}
	s.appendOp(m, c, q, op{
		kind:     opRead,
		tag:      req.Tag,
		boardBuf: buf.boardID,
		offset:   req.Offset,
		length:   req.Length,
		via:      req.Via,
		shmOff:   req.ShmOff,
	})
	return nil, nil
}

func (s *session) enqueueKernel(m *Manager, c *rpc.Conn, d *wire.Decoder) ([]byte, error) {
	var req wire.EnqueueKernelRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed EnqueueKernel: %v", err)
	}
	q, err := s.queue(req.Queue)
	if err != nil {
		sendFail(c, req.Tag, err)
		return nil, nil
	}
	s.mu.Lock()
	k, ok := s.kernels[req.Kernel]
	if !ok {
		s.mu.Unlock()
		sendFail(c, req.Tag, ocl.Errf(ocl.ErrInvalidKernel, "kernel %d", req.Kernel))
		return nil, nil
	}
	for i, set := range k.set {
		if !set {
			name := k.name
			s.mu.Unlock()
			sendFail(c, req.Tag, ocl.Errf(ocl.ErrInvalidKernelArgs,
				"kernel %q: argument %d not set", name, i))
			return nil, nil
		}
	}
	args := append([]ocl.Arg(nil), k.args...)
	name := k.name
	s.mu.Unlock()

	toInts := func(v []int64) []int {
		if v == nil {
			return nil
		}
		out := make([]int, len(v))
		for i, x := range v {
			out[i] = int(x)
		}
		return out
	}
	s.appendOp(m, c, q, op{
		kind:       opKernel,
		tag:        req.Tag,
		kernelName: name,
		args:       args,
		global:     toInts(req.Global),
		local:      toInts(req.Local),
	})
	return nil, nil
}

// appendOp adds the operation to the queue's current task and acknowledges
// it (the FIRST step of the client's event state machine).
func (s *session) appendOp(m *Manager, c *rpc.Conn, q *queueState, o op) {
	s.mu.Lock()
	q.cur = append(q.cur, o)
	s.mu.Unlock()
	m.notifyOp(c, &wire.OpNotification{Tag: o.tag, State: wire.OpAccepted})
}

// flush seals the queue's current task and submits it to the central FIFO
// queue. An empty task is a no-op.
func (s *session) flush(m *Manager, c *rpc.Conn, d *wire.Decoder) ([]byte, error) {
	var req wire.FlushRequest
	req.Decode(d)
	if err := d.Err(); err != nil {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "malformed Flush: %v", err)
	}
	q, err := s.queue(req.Queue)
	if err != nil {
		return nil, nil // nothing to fail: flush carries no tag
	}
	s.mu.Lock()
	ops := q.cur
	q.cur = nil
	s.mu.Unlock()
	if len(ops) == 0 {
		return nil, nil
	}
	if err := m.submit(&task{sess: s, conn: c, ops: ops}); err != nil {
		for _, o := range ops {
			sendFail(c, o.tag, err)
		}
	}
	return nil, nil
}

// notifyOp pushes an operation notification to the client.
func (m *Manager) notifyOp(c *rpc.Conn, n *wire.OpNotification) {
	e := wire.NewEncoder(64 + len(n.Data))
	n.Encode(e)
	c.Notify(e.Bytes()) // best effort
}

// runTask executes one task's operations back to back on the FPGA.
// A failing operation aborts the rest of the task: the queue is in-order,
// so later operations would observe inconsistent state.
func (m *Manager) runTask(t *task) {
	m.mTasks.Inc()
	var taskDevice time.Duration
	cost := m.board.Cost()
	scale := m.board.Config().TimeScale
	// Control-plane overhead of the flushed task (calibrated; the real
	// wire cost of this reproduction is far below hardware-era gRPC).
	if scale > 0 {
		time.Sleep(time.Duration(float64(cost.TaskControlOverhead(len(t.ops))) * scale))
	}
	failed := false
	var abortErr error
	for _, o := range t.ops {
		if failed {
			m.notifyOp(t.conn, &wire.OpNotification{
				Tag:    o.tag,
				State:  wire.OpFailed,
				Status: int32(ocl.ErrInvalidOperation),
				Error:  "aborted: earlier operation in task failed: " + abortErr.Error(),
			})
			continue
		}
		m.notifyOp(t.conn, &wire.OpNotification{Tag: o.tag, State: wire.OpRunning})
		n, err := m.runOp(t, o, cost, scale)
		m.mOps.Inc()
		if n != nil {
			taskDevice += time.Duration(n.DeviceNanos)
		}
		if err != nil {
			failed, abortErr = true, err
			m.notifyOp(t.conn, &wire.OpNotification{
				Tag:    o.tag,
				State:  wire.OpFailed,
				Status: int32(ocl.StatusOf(err)),
				Error:  err.Error(),
			})
			continue
		}
		m.notifyOp(t.conn, n)
	}
	m.mTaskHist.Observe(taskDevice.Seconds())
	m.traces.add(TaskTrace{
		Client:      t.sess.clientName,
		Ops:         len(t.ops),
		DeviceTime:  taskDevice,
		Failed:      failed,
		CompletedAt: time.Now(),
	})
}

// runOp executes one operation and builds its completion notification.
func (m *Manager) runOp(t *task, o op, cost *model.CostModel, scale float64) (*wire.OpNotification, error) {
	n := &wire.OpNotification{Tag: o.tag, State: wire.OpComplete}
	sleepHost := func(d time.Duration) {
		if scale > 0 && d > 0 {
			time.Sleep(time.Duration(float64(d) * scale))
		}
	}
	switch o.kind {
	case opWrite:
		var src []byte
		switch o.via {
		case wire.ViaInline:
			src = o.data
			sleepHost(cost.GRPCDataOverhead(o.length))
		case wire.ViaShm:
			seg := t.sess.segment()
			if seg == nil {
				return nil, ocl.Errf(ocl.ErrInvalidOperation, "shared-memory segment vanished")
			}
			rng, err := seg.Range(o.shmOff, o.length)
			if err != nil {
				return nil, ocl.Errf(ocl.ErrInvalidValue, "shm write range: %v", err)
			}
			src = rng
			sleepHost(cost.ShmDataOverhead(o.length))
		}
		d, err := m.board.Write(o.boardBuf, o.offset, src)
		if err != nil {
			return nil, err
		}
		n.DeviceNanos = int64(d)
		m.mBytesIn.Add(float64(o.length))
	case opRead:
		switch o.via {
		case wire.ViaInline:
			dst := make([]byte, o.length)
			d, err := m.board.Read(o.boardBuf, o.offset, dst)
			if err != nil {
				return nil, err
			}
			sleepHost(cost.GRPCDataOverhead(o.length))
			n.Data = dst
			n.DeviceNanos = int64(d)
		case wire.ViaShm:
			seg := t.sess.segment()
			if seg == nil {
				return nil, ocl.Errf(ocl.ErrInvalidOperation, "shared-memory segment vanished")
			}
			dst, err := seg.Range(o.shmOff, o.length)
			if err != nil {
				return nil, ocl.Errf(ocl.ErrInvalidValue, "shm read range: %v", err)
			}
			d, err := m.board.Read(o.boardBuf, o.offset, dst)
			if err != nil {
				return nil, err
			}
			sleepHost(cost.ShmDataOverhead(o.length))
			n.ShmLen = o.length
			n.DeviceNanos = int64(d)
		default:
			return nil, ocl.Errf(ocl.ErrInvalidValue, "data path %d", o.via)
		}
		m.mBytesOut.Add(float64(o.length))
	case opKernel:
		d, err := m.board.Run(o.kernelName, o.args, o.global)
		if err != nil {
			return nil, err
		}
		n.DeviceNanos = int64(d)
		m.mKernels.Inc()
	default:
		return nil, ocl.Errf(ocl.ErrInvalidOperation, "unknown op kind %d", o.kind)
	}
	return n, nil
}
