package manager_test

import (
	"strings"
	"testing"

	"blastfunction/internal/accel"
	"blastfunction/internal/manager"
	"blastfunction/internal/ocl"
)

// TestReflashBufferCacheGeometry pins the buffer cache's behaviour across
// reconfigurations: a reflash that keeps the DDR geometry (loopback →
// sobel, both the platform-default layout) leaves resident cached buffers
// valid, while one that changes it (→ pipecnn's banked4 striping)
// invalidates every entry, orphaning still-pinned buffers until their
// sessions release them.
func TestReflashBufferCacheGeometry(t *testing.T) {
	rig := newRig(t, manager.Config{})
	c := dialReuse(t, rig, "reflash", false)
	ctx, dev, _ := openDevice(t, c)
	buildLoopback(t, ctx, dev)

	const size = 32 << 10
	buf, err := ctx.CreateBuffer(ocl.MemReadOnly, size, weights(size))
	if err != nil {
		t.Fatal(err)
	}
	if st := rig.mgr.CacheStats().BufferCache; st.Entries != 1 {
		t.Fatalf("cache entries = %d after content-hashed create, want 1", st.Entries)
	}

	// Same-geometry reflash: DDR contents survive, the cache keeps serving.
	sobel, err := ctx.CreateProgramWithBinary(dev, accel.SobelBitstream().Binary())
	if err != nil {
		t.Fatal(err)
	}
	if err := sobel.Build(""); err != nil {
		t.Fatal(err)
	}
	if got := rig.board.ConfiguredID(); got != accel.SobelBitstreamID {
		t.Fatalf("configured bitstream = %q, want sobel", got)
	}
	st := rig.mgr.CacheStats().BufferCache
	if st.Entries != 1 || st.Invalidations != 0 {
		t.Fatalf("same-geometry reflash: entries=%d invalidations=%d, want 1/0", st.Entries, st.Invalidations)
	}

	// Geometry-changing reflash: every cached buffer is invalidated; the
	// one pinned by this session is orphaned, not freed under it.
	cnn, err := ctx.CreateProgramWithBinary(dev, accel.PipeCNNBitstream().Binary())
	if err != nil {
		t.Fatal(err)
	}
	if err := cnn.Build(""); err != nil {
		t.Fatal(err)
	}
	st = rig.mgr.CacheStats().BufferCache
	if st.Entries != 0 || st.Invalidations != 1 || st.OrphanedBufs != 1 {
		t.Fatalf("geometry change: entries=%d invalidations=%d orphans=%d, want 0/1/1",
			st.Entries, st.Invalidations, st.OrphanedBufs)
	}
	text := rig.mgr.Metrics().Render()
	for _, want := range []string{"bf_bufcache_invalidations_total", "bf_reconfig_seconds"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Releasing the session's handle frees the orphaned device memory.
	if err := buf.Release(); err != nil {
		t.Fatal(err)
	}
	if st := rig.mgr.CacheStats().BufferCache; st.OrphanedBufs != 0 {
		t.Fatalf("orphans = %d after release, want 0", st.OrphanedBufs)
	}
}
