package manager_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"blastfunction/internal/accel"
	"blastfunction/internal/fpga"
	"blastfunction/internal/logx"
	"blastfunction/internal/manager"
	"blastfunction/internal/model"
	"blastfunction/internal/ocl"
	"blastfunction/internal/rpc"
	"blastfunction/internal/wire"
)

// rawClient dials the rig with a bare RPC client for protocol-level tests.
func rawClient(t *testing.T, rig *testRig) *rpc.Client {
	t.Helper()
	c, err := rpc.Dial(rig.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func hello(t *testing.T, c *rpc.Client, name string, version uint32) ([]byte, error) {
	t.Helper()
	e := wire.NewEncoder(32)
	(&wire.HelloRequest{ClientName: name, ProtoVersion: version}).Encode(e)
	return c.Call(wire.MethodHello, e.Bytes())
}

func TestProtocolVersionMismatchRejected(t *testing.T) {
	rig := newRig(t, manager.Config{})
	c := rawClient(t, rig)
	if _, err := hello(t, c, "old-client", wire.ProtoVersion+1); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("version mismatch err = %v", err)
	}
	// The connection itself survives; a correct Hello then works.
	if _, err := hello(t, c, "fixed-client", wire.ProtoVersion); err != nil {
		t.Fatalf("corrected hello: %v", err)
	}
}

func TestRequestsBeforeHelloRejected(t *testing.T) {
	rig := newRig(t, manager.Config{})
	c := rawClient(t, rig)
	for _, m := range []wire.Method{
		wire.MethodDeviceInfo, wire.MethodCreateContext, wire.MethodCreateBuffer,
	} {
		if _, err := c.Call(m, nil); !errors.Is(err, ocl.ErrInvalidOperation) {
			t.Fatalf("%v before Hello err = %v", m, err)
		}
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	rig := newRig(t, manager.Config{})
	c := rawClient(t, rig)
	if _, err := hello(t, c, "x", wire.ProtoVersion); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(wire.Method(9999), nil); !errors.Is(err, ocl.ErrInvalidOperation) {
		t.Fatalf("unknown method err = %v", err)
	}
}

func TestMalformedBodiesDoNotCrashManager(t *testing.T) {
	rig := newRig(t, manager.Config{})
	c := rawClient(t, rig)
	if _, err := hello(t, c, "fuzz", wire.ProtoVersion); err != nil {
		t.Fatal(err)
	}
	garbage := [][]byte{nil, {0x01}, bytes.Repeat([]byte{0xFF}, 64), []byte("not a message")}
	// MethodCreateContext is excluded: it takes no body, so any payload
	// legitimately succeeds.
	methods := []wire.Method{
		wire.MethodReleaseContext, wire.MethodCreateQueue,
		wire.MethodReleaseQueue, wire.MethodCreateBuffer, wire.MethodReleaseBuffer,
		wire.MethodCreateProgram, wire.MethodBuildProgram, wire.MethodCreateKernel,
		wire.MethodReleaseKernel, wire.MethodSetKernelArg, wire.MethodSetupShm,
	}
	for _, m := range methods {
		for _, g := range garbage {
			// Some short bodies decode to zero-valued requests, which fail
			// handle-validation instead; either way the call must return an
			// error response, never crash or hang.
			if _, err := c.Call(m, g); err == nil {
				t.Fatalf("method %v accepted garbage body %v", m, g)
			}
		}
	}
	// The session is still functional afterwards.
	if _, err := c.Call(wire.MethodCreateContext, nil); err != nil {
		t.Fatalf("manager unusable after garbage: %v", err)
	}
}

func TestCommandQueueGarbageFailsViaEvents(t *testing.T) {
	rig := newRig(t, manager.Config{})
	c := rawClient(t, rig)
	if _, err := hello(t, c, "fuzz2", wire.ProtoVersion); err != nil {
		t.Fatal(err)
	}
	// Fire-and-forget garbage on the command-queue methods: no unary
	// response exists, so nothing to assert beyond the manager staying
	// alive and responsive.
	for _, m := range []wire.Method{wire.MethodEnqueueWrite, wire.MethodEnqueueRead, wire.MethodEnqueueKernel, wire.MethodFlush} {
		if err := c.Send(m, []byte{0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Call(wire.MethodDeviceInfo, nil); err != nil {
		t.Fatalf("manager unresponsive after command-queue garbage: %v", err)
	}
}

func TestSmallQueueCapacityBackpressure(t *testing.T) {
	// A tiny central queue with a slow board: submissions backpressure
	// but every task still completes.
	board := fpga.NewBoard(fpga.Config{
		Name:      "slow",
		Vendor:    "v",
		MemBytes:  1 << 20,
		Cost:      model.WorkerNode(),
		TimeScale: 0.001,
	}, accel.Catalog())
	mgr := manager.New(manager.Config{Node: "n", DeviceID: "d", QueueCapacity: 2}, board)
	srv := rpc.NewServer(mgr)
	srv.Log = logx.NewLogf("rpc", t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); mgr.Close() })

	rig := &testRig{mgr: mgr, srv: srv, addr: addr, board: board}
	client := dialRig(t, rig, 1 /* TransportGRPC */, "backpressure")
	ctx, dev, q := openDevice(t, client)
	k := buildLoopback(t, ctx, dev)
	in, _ := ctx.CreateBuffer(ocl.MemReadOnly, 256, nil)
	out, _ := ctx.CreateBuffer(ocl.MemWriteOnly, 256, nil)
	k.SetArg(0, in)
	k.SetArg(1, out)
	k.SetArg(2, int32(256))
	var events []ocl.Event
	for i := 0; i < 16; i++ {
		ev, err := q.EnqueueTask(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
		if err := q.Flush(); err != nil { // one task per flush: 16 tasks
			t.Fatal(err)
		}
	}
	if err := ocl.WaitForEvents(events...); err != nil {
		t.Fatal(err)
	}
	if got := board.Stats().KernelRuns; got != 16 {
		t.Fatalf("kernel runs = %d", got)
	}
}

func TestTaskTraceAndHistogram(t *testing.T) {
	rig := newRig(t, manager.Config{DeviceID: "traced"})
	client := dialRig(t, rig, 1, "trace-tenant")
	ctx, dev, q := openDevice(t, client)
	k := buildLoopback(t, ctx, dev)
	in, _ := ctx.CreateBuffer(ocl.MemReadOnly, 64, nil)
	out, _ := ctx.CreateBuffer(ocl.MemWriteOnly, 64, nil)
	k.SetArg(0, in)
	k.SetArg(1, out)
	k.SetArg(2, int32(64))
	for i := 0; i < 3; i++ {
		if _, err := q.EnqueueWriteBuffer(in, false, 0, make([]byte, 64), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueTask(k, nil); err != nil {
			t.Fatal(err)
		}
		if err := q.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	traces := rig.mgr.Traces()
	if len(traces) != 3 {
		t.Fatalf("traces = %d, want 3", len(traces))
	}
	for i, tr := range traces {
		if tr.Client != "trace-tenant" || tr.Ops != 2 || tr.Failed {
			t.Fatalf("trace %d = %+v", i, tr)
		}
		if tr.DeviceTime <= 0 {
			t.Fatalf("trace %d device time = %v", i, tr.DeviceTime)
		}
		if i > 0 && traces[i].Seq != traces[i-1].Seq+1 {
			t.Fatalf("sequence gap at %d", i)
		}
	}
	// The histogram counted the tasks.
	text := rig.mgr.Metrics().Render()
	if !strings.Contains(text, `bf_task_device_seconds_count{device="traced",node="testnode"} 3`) {
		t.Fatalf("task histogram missing:\n%s", text)
	}
	// The trace HTTP endpoint serves JSON.
	srv := httptest.NewServer(rig.mgr.TraceHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var got []manager.TaskTrace
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(got) != 3 {
		t.Fatalf("endpoint traces = %d", len(got))
	}
}

func TestTraceRingOverwritesOldest(t *testing.T) {
	rig := newRig(t, manager.Config{DeviceID: "ring"})
	client := dialRig(t, rig, 1, "ring-tenant")
	ctx, _, q := openDevice(t, client)
	buf, _ := ctx.CreateBuffer(ocl.MemReadWrite, 16, nil)
	// 600 single-op tasks against the default 512-entry ring.
	for i := 0; i < 600; i++ {
		if _, err := q.EnqueueWriteBuffer(buf, false, 0, make([]byte, 16), nil); err != nil {
			t.Fatal(err)
		}
		if err := q.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	traces := rig.mgr.Traces()
	if len(traces) != 512 {
		t.Fatalf("ring holds %d, want 512", len(traces))
	}
	if traces[0].Seq != 600-512+1 {
		t.Fatalf("oldest seq = %d, want %d", traces[0].Seq, 600-512+1)
	}
	if traces[len(traces)-1].Seq != 600 {
		t.Fatalf("newest seq = %d, want 600", traces[len(traces)-1].Seq)
	}
}
