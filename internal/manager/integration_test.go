package manager_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/fpga"
	"blastfunction/internal/logx"
	"blastfunction/internal/manager"
	"blastfunction/internal/model"
	"blastfunction/internal/native"
	"blastfunction/internal/ocl"
	"blastfunction/internal/remote"
	"blastfunction/internal/rpc"
)

// testRig is a manager serving one simulated board over real TCP.
type testRig struct {
	mgr   *manager.Manager
	srv   *rpc.Server
	addr  string
	board *fpga.Board
}

func newRig(t *testing.T, cfg manager.Config) *testRig {
	t.Helper()
	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
	if cfg.Node == "" {
		cfg.Node = "testnode"
	}
	mgr := manager.New(cfg, board)
	srv := rpc.NewServer(mgr)
	srv.Log = logx.NewLogf("rpc", t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return &testRig{mgr: mgr, srv: srv, addr: addr, board: board}
}

func dialRig(t *testing.T, rig *testRig, mode remote.TransportMode, name string) *remote.Client {
	t.Helper()
	client, err := remote.Dial(remote.Config{
		ClientName: name,
		Managers:   []string{rig.addr},
		Transport:  mode,
		ShmDir:     t.TempDir(),
		ShmBytes:   16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// openDevice discovers the single device and builds context + queue.
func openDevice(t *testing.T, client ocl.Client) (ocl.Context, ocl.Device, ocl.CommandQueue) {
	t.Helper()
	platforms, err := client.Platforms()
	if err != nil {
		t.Fatal(err)
	}
	if len(platforms) != 1 {
		t.Fatalf("platforms = %d", len(platforms))
	}
	devs, err := platforms[0].Devices(ocl.DeviceTypeAccelerator)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) == 0 {
		t.Fatal("no devices")
	}
	ctx, err := client.CreateContext(devs[:1])
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateCommandQueue(devs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, devs[0], q
}

// buildLoopback loads and builds the diagnostic loopback design.
func buildLoopback(t *testing.T, ctx ocl.Context, dev ocl.Device) ocl.Kernel {
	t.Helper()
	prog, err := ctx.CreateProgramWithBinary(dev, accel.LoopbackBitstream().Binary())
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("copy")
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// runCopy runs the write -> copy kernel -> read round trip through any ocl
// client — the transparency check host code.
func runCopy(t *testing.T, ctx ocl.Context, q ocl.CommandQueue, k ocl.Kernel, payload []byte) []byte {
	t.Helper()
	in, err := ctx.CreateBuffer(ocl.MemReadOnly, len(payload), nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.CreateBuffer(ocl.MemWriteOnly, len(payload), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Release()
	defer out.Release()
	if err := k.SetArg(0, in); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArg(1, out); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArg(2, int32(len(payload))); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueWriteBuffer(in, false, 0, payload, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueTask(k, nil); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(payload))
	if _, err := q.EnqueueReadBuffer(out, false, 0, dst, nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestRemoteRoundTripGRPC(t *testing.T) {
	rig := newRig(t, manager.Config{DeviceID: "fpga0"})
	client := dialRig(t, rig, remote.TransportGRPC, "it-grpc")
	ctx, dev, q := openDevice(t, client)
	k := buildLoopback(t, ctx, dev)
	payload := bytes.Repeat([]byte("grpc-path!"), 100)
	if got := runCopy(t, ctx, q, k, payload); !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted through gRPC data path")
	}
	if client.Transport(0) != model.TransportGRPC {
		t.Fatalf("transport = %v", client.Transport(0))
	}
}

func TestRemoteRoundTripShm(t *testing.T) {
	rig := newRig(t, manager.Config{DeviceID: "fpga0"})
	client := dialRig(t, rig, remote.TransportShm, "it-shm")
	if client.Transport(0) != model.TransportShm {
		t.Fatalf("transport = %v, want shm", client.Transport(0))
	}
	ctx, dev, q := openDevice(t, client)
	k := buildLoopback(t, ctx, dev)
	payload := bytes.Repeat([]byte("shm-path!!"), 1000)
	if got := runCopy(t, ctx, q, k, payload); !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted through shm data path")
	}
}

func TestTransparencyNativeVsRemote(t *testing.T) {
	// The same host code (runCopy) must produce identical results on the
	// native baseline and through BlastFunction — the paper's central
	// transparency claim.
	payload := bytes.Repeat([]byte{0xA5, 0x5A, 0x01}, 333)

	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
	nat := native.New(board)
	nctx, ndev, nq := openDevice(t, nat)
	nk := buildLoopback(t, nctx, ndev)
	nativeOut := runCopy(t, nctx, nq, nk, payload)

	rig := newRig(t, manager.Config{})
	client := dialRig(t, rig, remote.TransportAuto, "it-transparency")
	rctx, rdev, rq := openDevice(t, client)
	rk := buildLoopback(t, rctx, rdev)
	remoteOut := runCopy(t, rctx, rq, rk, payload)

	if !bytes.Equal(nativeOut, remoteOut) {
		t.Fatal("native and remote executions disagree")
	}
}

func TestSobelThroughRemote(t *testing.T) {
	rig := newRig(t, manager.Config{})
	client := dialRig(t, rig, remote.TransportAuto, "it-sobel")
	ctx, dev, q := openDevice(t, client)
	prog, err := ctx.CreateProgramWithBinary(dev, accel.SobelBitstream().Binary())
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("sobel")
	if err != nil {
		t.Fatal(err)
	}
	const w, h = 16, 16
	img := make([]byte, w*h*2)
	for i := 0; i < w*h; i++ {
		if i%w >= w/2 {
			img[i*2] = 0xE8
			img[i*2+1] = 0x03 // 1000
		}
	}
	in, _ := ctx.CreateBuffer(ocl.MemReadOnly, len(img), img)
	out, _ := ctx.CreateBuffer(ocl.MemWriteOnly, len(img), nil)
	k.SetArg(0, in)
	k.SetArg(1, out)
	k.SetArg(2, int32(w))
	k.SetArg(3, int32(h))
	if _, err := q.EnqueueNDRangeKernel(k, []int{w, h}, nil, nil); err != nil {
		t.Fatal(err)
	}
	res := make([]byte, len(img))
	if _, err := q.EnqueueReadBuffer(out, true, 0, res, nil); err != nil {
		t.Fatal(err)
	}
	// The vertical edge at x = w/2 must produce a response.
	edgeIdx := (5*w + w/2) * 2
	if res[edgeIdx] == 0 && res[edgeIdx+1] == 0 {
		t.Fatal("no Sobel response at the edge")
	}
}

func TestEventStateProgression(t *testing.T) {
	rig := newRig(t, manager.Config{})
	client := dialRig(t, rig, remote.TransportGRPC, "it-events")
	ctx, _, q := openDevice(t, client)
	buf, err := ctx.CreateBuffer(ocl.MemReadWrite, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := q.EnqueueWriteBuffer(buf, false, 0, make([]byte, 1024), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.CommandType() != ocl.CommandWriteBuffer {
		t.Fatalf("command type = %v", ev.CommandType())
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	if ev.Status() != ocl.Complete {
		t.Fatalf("status after Finish = %v", ev.Status())
	}
	if err := ocl.WaitForEvents(ev); err != nil {
		t.Fatal(err)
	}
}

func TestWaitImplicitlyFlushes(t *testing.T) {
	// Waiting on an event of an unflushed task must flush the queue
	// rather than deadlock (clWaitForEvents semantics).
	rig := newRig(t, manager.Config{})
	client := dialRig(t, rig, remote.TransportGRPC, "it-implicit-flush")
	ctx, _, q := openDevice(t, client)
	buf, _ := ctx.CreateBuffer(ocl.MemReadWrite, 64, nil)
	ev, err := q.EnqueueWriteBuffer(buf, false, 0, make([]byte, 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ev.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait deadlocked on unflushed task")
	}
}

func TestEnqueueErrorsArriveOnEvents(t *testing.T) {
	rig := newRig(t, manager.Config{})
	client := dialRig(t, rig, remote.TransportGRPC, "it-errs")
	ctx, dev, q := openDevice(t, client)

	// Kernel with unset arguments: the failure must arrive via the event
	// path, not as an enqueue error (asynchronous flow).
	prog, _ := ctx.CreateProgramWithBinary(dev, accel.LoopbackBitstream().Binary())
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("copy")
	ev, err := q.EnqueueTask(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if werr := ev.Wait(); !errors.Is(werr, ocl.ErrInvalidKernelArgs) {
		t.Fatalf("event err = %v, want CL_INVALID_KERNEL_ARGS", werr)
	}
}

func TestTaskAbortCascade(t *testing.T) {
	// If an operation in a task fails, the remaining operations of that
	// task must fail too (in-order consistency), and a fresh task must
	// work again afterwards.
	rig := newRig(t, manager.Config{})
	client := dialRig(t, rig, remote.TransportGRPC, "it-abort")
	ctx, dev, q := openDevice(t, client)
	k := buildLoopback(t, ctx, dev)
	in, _ := ctx.CreateBuffer(ocl.MemReadOnly, 64, nil)
	out, _ := ctx.CreateBuffer(ocl.MemWriteOnly, 64, nil)
	k.SetArg(0, in)
	k.SetArg(1, out)
	k.SetArg(2, int32(9999)) // out of range: kernel will fail

	wev, _ := q.EnqueueWriteBuffer(in, false, 0, make([]byte, 64), nil)
	kev, _ := q.EnqueueTask(k, nil)
	dst := make([]byte, 64)
	rev, _ := q.EnqueueReadBuffer(out, false, 0, dst, nil)
	q.Finish()

	if wev.Err() != nil {
		t.Fatalf("write failed: %v", wev.Err())
	}
	if kev.Err() == nil {
		t.Fatal("kernel with bad size must fail")
	}
	if rev.Err() == nil {
		t.Fatal("read after failed kernel must be aborted")
	}
	if !strings.Contains(rev.Err().Error(), "aborted") {
		t.Fatalf("read err = %v, want abort cascade", rev.Err())
	}

	// Recovery: a correct task on the same queue succeeds.
	k.SetArg(2, int32(64))
	payload := bytes.Repeat([]byte{7}, 64)
	if got := runCopy(t, ctx, q, k, payload); !bytes.Equal(got, payload) {
		t.Fatal("queue did not recover after aborted task")
	}
}

func TestClientIsolation(t *testing.T) {
	// Two tenants share the board; handles are session-scoped so one
	// tenant cannot reach the other's resources, and concurrent tasks do
	// not corrupt each other.
	rig := newRig(t, manager.Config{})
	a := dialRig(t, rig, remote.TransportGRPC, "tenant-a")
	b := dialRig(t, rig, remote.TransportGRPC, "tenant-b")
	actx, adev, _ := openDevice(t, a)
	bctx, bdev, _ := openDevice(t, b)

	// Each concurrent stream needs its own queue and kernel: kernel
	// argument state is per-object in OpenCL, so sharing one kernel
	// across threads races by design.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		ctx, dev := actx, adev
		if i%2 == 1 {
			ctx, dev = bctx, bdev
		}
		q, err := ctx.CreateCommandQueue(dev, 0)
		if err != nil {
			t.Fatal(err)
		}
		k := buildLoopback(t, ctx, dev)
		wg.Add(1)
		go func(i int, ctx ocl.Context, q ocl.CommandQueue, k ocl.Kernel) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('A' + i)}, 256)
			if got := runCopy(t, ctx, q, k, payload); !bytes.Equal(got, payload) {
				t.Errorf("tenant round %d corrupted", i)
			}
		}(i, ctx, q, k)
	}
	wg.Wait()
	if rig.mgr.Sessions() != 2 {
		t.Fatalf("sessions = %d", rig.mgr.Sessions())
	}
}

func TestCrossSessionHandleRejected(t *testing.T) {
	// Session B guesses handle values; they must not resolve to session
	// A's objects. A buffer handle valid in A is invalid in B.
	rig := newRig(t, manager.Config{})
	a := dialRig(t, rig, remote.TransportGRPC, "tenant-a")
	dialRig(t, rig, remote.TransportGRPC, "tenant-b")
	actx, _, aq := openDevice(t, a)
	// Create several buffers in A so board IDs advance.
	var last ocl.Buffer
	for i := 0; i < 3; i++ {
		buf, err := actx.CreateBuffer(ocl.MemReadWrite, 128, nil)
		if err != nil {
			t.Fatal(err)
		}
		last = buf
	}
	// A's own handle works.
	if _, err := aq.EnqueueWriteBuffer(last, true, 0, make([]byte, 16), nil); err != nil {
		t.Fatal(err)
	}
	// B has no buffers: any read through B's context must fail. B's
	// context was never given buffers, so we go through the raw enqueue
	// path by creating a context but using a foreign ocl.Buffer value.
	bctxIface, err := func() (ocl.Context, error) {
		platforms, _ := a.Platforms()
		devs, _ := platforms[0].Devices(ocl.DeviceTypeAll)
		return a.CreateContext(devs[:1])
	}()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := bctxIface.CreateCommandQueue(bctxIface.Devices()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.EnqueueWriteBuffer(last, false, 0, make([]byte, 16), nil); !errors.Is(err, ocl.ErrInvalidMemObject) {
		t.Fatalf("foreign-context buffer err = %v", err)
	}
}

func TestReconfigGate(t *testing.T) {
	gateErr := fmt.Errorf("registry says no")
	rig := newRig(t, manager.Config{
		ReconfigGate: func(client, bitID string) error {
			if bitID == accel.MMBitstreamID {
				return gateErr
			}
			return nil
		},
	})
	client := dialRig(t, rig, remote.TransportGRPC, "it-gate")
	ctx, dev, _ := openDevice(t, client)

	allowed, err := ctx.CreateProgramWithBinary(dev, accel.SobelBitstream().Binary())
	if err != nil {
		t.Fatal(err)
	}
	if err := allowed.Build(""); err != nil {
		t.Fatalf("allowed build: %v", err)
	}
	denied, err := ctx.CreateProgramWithBinary(dev, accel.MMBitstream().Binary())
	if err != nil {
		t.Fatal(err)
	}
	if err := denied.Build(""); err == nil {
		t.Fatal("gated reconfiguration must fail")
	}
	if rig.board.ConfiguredID() != accel.SobelBitstreamID {
		t.Fatalf("board configured with %q", rig.board.ConfiguredID())
	}
}

func TestRebuildSameBitstreamIsNoOp(t *testing.T) {
	rig := newRig(t, manager.Config{})
	client := dialRig(t, rig, remote.TransportGRPC, "it-rebuild")
	ctx, dev, _ := openDevice(t, client)
	prog, _ := ctx.CreateProgramWithBinary(dev, accel.SobelBitstream().Binary())
	for i := 0; i < 3; i++ {
		if err := prog.Build(""); err != nil {
			t.Fatal(err)
		}
	}
	if got := rig.board.Stats().Reconfigs; got != 1 {
		t.Fatalf("reconfigs = %d, want 1", got)
	}
}

func TestDisconnectReleasesResources(t *testing.T) {
	rig := newRig(t, manager.Config{})
	client := dialRig(t, rig, remote.TransportGRPC, "it-cleanup")
	ctx, _, _ := openDevice(t, client)
	for i := 0; i < 4; i++ {
		if _, err := ctx.CreateBuffer(ocl.MemReadWrite, 1<<20, nil); err != nil {
			t.Fatal(err)
		}
	}
	if rig.board.Allocated() != 4<<20 {
		t.Fatalf("allocated = %d", rig.board.Allocated())
	}
	client.Close()
	deadline := time.Now().Add(2 * time.Second)
	for rig.board.Allocated() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := rig.board.Allocated(); got != 0 {
		t.Fatalf("allocated after disconnect = %d, want 0", got)
	}
}

func TestManagerMetricsExported(t *testing.T) {
	rig := newRig(t, manager.Config{DeviceID: "fpgaX", Node: "nodeZ"})
	client := dialRig(t, rig, remote.TransportGRPC, "it-metrics")
	ctx, dev, q := openDevice(t, client)
	k := buildLoopback(t, ctx, dev)
	runCopy(t, ctx, q, k, make([]byte, 4096))

	text := rig.mgr.Metrics().Render()
	for _, want := range []string{
		`bf_connected_clients{device="fpgaX",node="nodeZ"} 1`,
		`bf_tasks_total{device="fpgaX",node="nodeZ"} 1`,
		`bf_kernel_runs_total{device="fpgaX",node="nodeZ"} 1`,
		"bf_device_busy_seconds_total",
		"bf_reconfigurations_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestMultiQueueSameClient(t *testing.T) {
	// PipeCNN-style: one client drives several queues; tasks from both
	// queues interleave at task granularity without corrupting results.
	rig := newRig(t, manager.Config{})
	client := dialRig(t, rig, remote.TransportGRPC, "it-multiq")
	ctx, dev, q1 := openDevice(t, client)
	q2, err := ctx.CreateCommandQueue(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := buildLoopback(t, ctx, dev)
	k2 := buildLoopback(t, ctx, dev)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			p := bytes.Repeat([]byte{1}, 128)
			if got := runCopy(t, ctx, q1, k, p); !bytes.Equal(got, p) {
				t.Error("q1 corrupted")
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			p := bytes.Repeat([]byte{2}, 128)
			if got := runCopy(t, ctx, q2, k2, p); !bytes.Equal(got, p) {
				t.Error("q2 corrupted")
			}
		}
	}()
	wg.Wait()
}

func TestNativeRuntimeSemantics(t *testing.T) {
	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
	client := native.New(board)
	ctx, dev, q := openDevice(t, client)
	k := buildLoopback(t, ctx, dev)
	payload := bytes.Repeat([]byte("native"), 50)
	if got := runCopy(t, ctx, q, k, payload); !bytes.Equal(got, payload) {
		t.Fatal("native round trip corrupted")
	}
	// Marker and barrier behave.
	mev, err := q.EnqueueMarker()
	if err != nil {
		t.Fatal(err)
	}
	if err := mev.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := q.EnqueueBarrier(); err != nil {
		t.Fatal(err)
	}
	if err := q.Release(); err != nil {
		t.Fatal(err)
	}
	// Kernel with unset args fails at enqueue (native is synchronous
	// enough to catch it immediately).
	k2, _ := buildLoopback(t, ctx, dev).(ocl.Kernel)
	_ = k2
	prog, _ := ctx.CreateProgramWithBinary(dev, accel.LoopbackBitstream().Binary())
	k3, _ := prog.CreateKernel("copy")
	q2, _ := ctx.CreateCommandQueue(dev, 0)
	if _, err := q2.EnqueueTask(k3, nil); !errors.Is(err, ocl.ErrInvalidKernelArgs) {
		t.Fatalf("unset args err = %v", err)
	}
}

func TestShmFallbackWhenNodeDiffers(t *testing.T) {
	// Auto transport with a mismatched node name must fall back to the
	// RPC data path, like the paper's policy for non-co-located clients.
	rig := newRig(t, manager.Config{Node: "remote-node"})
	client, err := remote.Dial(remote.Config{
		ClientName: "it-fallback",
		Managers:   []string{rig.addr},
		Node:       "local-node",
		Transport:  remote.TransportAuto,
		ShmDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Transport(0) != model.TransportGRPC {
		t.Fatalf("transport = %v, want gRPC fallback", client.Transport(0))
	}
	// And forcing shm across nodes must fail.
	if _, err := remote.Dial(remote.Config{
		ClientName: "it-fallback2",
		Managers:   []string{rig.addr},
		Node:       "local-node",
		Transport:  remote.TransportShm,
		ShmDir:     t.TempDir(),
	}); err == nil {
		t.Fatal("forced shm across nodes must fail")
	}
}

func TestLargeTransferShmOverflowFallsBackInline(t *testing.T) {
	// A transfer larger than the shm arena must still succeed via the
	// inline path.
	rig := newRig(t, manager.Config{})
	client, err := remote.Dial(remote.Config{
		ClientName: "it-overflow",
		Managers:   []string{rig.addr},
		Transport:  remote.TransportShm,
		ShmDir:     t.TempDir(),
		ShmBytes:   1 << 16, // tiny segment
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, dev, q := openDevice(t, client)
	k := buildLoopback(t, ctx, dev)
	payload := bytes.Repeat([]byte{0xCD}, 1<<18) // 4x the segment
	if got := runCopy(t, ctx, q, k, payload); !bytes.Equal(got, payload) {
		t.Fatal("oversized transfer corrupted")
	}
}

func TestProfilingInfoExposed(t *testing.T) {
	// Both runtimes expose the modelled device occupancy of completed
	// commands through ocl.ProfilingEvent — the
	// clGetEventProfilingInfo analog.
	check := func(t *testing.T, ctx ocl.Context, q ocl.CommandQueue) {
		buf, err := ctx.CreateBuffer(ocl.MemReadWrite, 1<<20, nil)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := q.EnqueueWriteBuffer(buf, true, 0, make([]byte, 1<<20), nil)
		if err != nil {
			t.Fatal(err)
		}
		pe, ok := ev.(ocl.ProfilingEvent)
		if !ok {
			t.Fatalf("%T does not expose profiling info", ev)
		}
		// 1 MB over the 6 GB/s worker link is ~170us of device time.
		got := pe.DeviceTime()
		if got < 100*time.Microsecond || got > 500*time.Microsecond {
			t.Fatalf("device time = %v, want ~170us", got)
		}
	}
	t.Run("remote", func(t *testing.T) {
		rig := newRig(t, manager.Config{})
		client := dialRig(t, rig, remote.TransportGRPC, "prof-remote")
		ctx, _, q := openDevice(t, client)
		check(t, ctx, q)
	})
	t.Run("native", func(t *testing.T) {
		board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
		ctx, _, q := openDevice(t, native.New(board))
		check(t, ctx, q)
	})
}

func TestManyTenantsSoak(t *testing.T) {
	// Ten tenants, each with its own queue and kernel, hammer one board
	// concurrently through both data paths; every result must be intact
	// and per-tenant counters must add up.
	rig := newRig(t, manager.Config{DeviceID: "soak"})
	const tenants = 10
	const rounds = 12
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		mode := remote.TransportGRPC
		if i%2 == 0 {
			mode = remote.TransportShm
		}
		client := dialRig(t, rig, mode, fmt.Sprintf("soak-%d", i))
		ctx, dev, q := openDevice(t, client)
		k := buildLoopback(t, ctx, dev)
		wg.Add(1)
		go func(i int, ctx ocl.Context, q ocl.CommandQueue, k ocl.Kernel) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(i + 1)}, 512+i*37)
			for r := 0; r < rounds; r++ {
				if got := runCopy(t, ctx, q, k, payload); !bytes.Equal(got, payload) {
					t.Errorf("tenant %d round %d corrupted", i, r)
					return
				}
			}
		}(i, ctx, q, k)
	}
	wg.Wait()
	if got := rig.board.Stats().KernelRuns; got != tenants*rounds {
		t.Fatalf("kernel runs = %d, want %d", got, tenants*rounds)
	}
	if rig.mgr.Sessions() != tenants {
		t.Fatalf("sessions = %d", rig.mgr.Sessions())
	}
	// The trace ring attributes tasks to every tenant.
	byClient := map[string]int{}
	for _, tr := range rig.mgr.Traces() {
		byClient[tr.Client]++
	}
	if len(byClient) != tenants {
		t.Fatalf("traces cover %d tenants, want %d", len(byClient), tenants)
	}
}
