package gateway

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blastfunction/internal/metrics"
)

// fakeClock is an injectable Now for deterministic bucket refills.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestAdmissionBucketRefills(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(Budget{Rate: 1, Burst: 2})
	a.Now = clk.now

	for i := 0; i < 2; i++ {
		if ok, _ := a.Admit("t1"); !ok {
			t.Fatalf("admit %d rejected with full bucket", i)
		}
	}
	ok, retry := a.Admit("t1")
	if ok {
		t.Fatal("empty bucket must reject")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retry)
	}
	clk.advance(time.Second) // one token accrues
	if ok, _ := a.Admit("t1"); !ok {
		t.Fatal("refilled bucket must admit")
	}
	if ok, _ := a.Admit("t1"); ok {
		t.Fatal("only one token accrued")
	}
}

func TestAdmissionTenantsIsolated(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(Budget{Rate: 0, Burst: 1})
	a.Now = clk.now
	if ok, _ := a.Admit("a"); !ok {
		t.Fatal("tenant a first request must pass")
	}
	if ok, _ := a.Admit("a"); ok {
		t.Fatal("tenant a exhausted its bucket")
	}
	// Tenant b has its own bucket.
	if ok, _ := a.Admit("b"); !ok {
		t.Fatal("tenant b must have a fresh bucket")
	}
	// Zero-rate tenants get a finite, long Retry-After.
	if _, retry := a.Admit("a"); retry != time.Hour {
		t.Fatalf("zero-rate retry = %v", retry)
	}
}

func TestAdmissionPriorityMultiplies(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(Budget{Rate: 1, Burst: 2})
	a.Now = clk.now
	a.SetBudget("gold", Budget{Rate: 1, Burst: 2, Priority: 3})
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := a.Admit("gold"); ok {
			admitted++
		}
	}
	if admitted != 6 { // burst 2 × priority 3
		t.Fatalf("gold admitted %d, want 6", admitted)
	}
	snap := a.Snapshot()
	if len(snap) != 1 || snap[0].Tenant != "gold" || snap[0].Priority != 3 ||
		snap[0].Admitted != 6 || snap[0].Rejected != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestParseAdmission(t *testing.T) {
	a, err := ParseAdmission([]string{"50:100", "gold=500:1000:2"})
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a.Now = clk.now
	for i := 0; i < 100; i++ {
		if ok, _ := a.Admit("anon"); !ok {
			t.Fatalf("default burst exhausted at %d, want 100", i)
		}
	}
	if ok, _ := a.Admit("anon"); ok {
		t.Fatal("default burst must be 100")
	}

	for _, bad := range [][]string{
		{},             // no default
		{"gold=1:1"},   // override only, still no default
		{"1:1", "2:2"}, // default twice
		{"abc:1"},      // bad rate
		{"1:0"},        // burst < 1
		{"1:1:0"},      // priority < 1
		{"=1:1"},       // empty tenant
		{"1"},          // missing burst
		{"1:1:1:1"},    // too many fields
	} {
		if _, err := ParseAdmission(bad); err == nil {
			t.Fatalf("ParseAdmission(%v) must fail", bad)
		}
	}
}

func TestHandlerRejectsOverBudget(t *testing.T) {
	g, _ := startGateway(t)
	g.Admission = NewAdmission(Budget{Rate: 0, Burst: 2})
	if err := g.Deploy("echo", 1, echoFactory(nil)); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, g, "echo", 1)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	for i := 0; i < 2; i++ {
		resp, err := srv.Client().Get(srv.URL + "/function/echo")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d = %v, want 200", i, resp.Status)
		}
	}
	resp, err := srv.Client().Get(srv.URL + "/function/echo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over budget = %v, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	st := g.Stats("echo")
	if st.Admitted != 2 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Rejected requests never reach an endpoint.
	if st.Requests != 2 {
		t.Fatalf("requests = %d, want 2", st.Requests)
	}

	// A different tenant (header) draws from its own bucket.
	req, _ := http.NewRequest("GET", srv.URL+"/function/echo", nil)
	req.Header.Set(TenantHeader, "other")
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant = %v, want 200", resp.Status)
	}
}

func TestHandlerCountsAdmissionMetrics(t *testing.T) {
	g, _ := startGateway(t)
	g.Admission = NewAdmission(Budget{Rate: 0, Burst: 1})
	g.Metrics = metrics.NewRegistry()
	if err := g.Deploy("echo", 1, echoFactory(nil)); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, g, "echo", 1)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, err := srv.Client().Get(srv.URL + "/function/echo")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	out := g.Metrics.Render()
	if !strings.Contains(out, `bf_gateway_admitted_total{function="echo"} 1`) {
		t.Fatalf("admitted counter missing:\n%s", out)
	}
	if !strings.Contains(out, `bf_gateway_rejected_total{function="echo"} 2`) {
		t.Fatalf("rejected counter missing:\n%s", out)
	}
}

func TestDebugGatewayEndpoint(t *testing.T) {
	g, _ := startGateway(t)
	g.Admission = NewAdmission(Budget{Rate: 0, Burst: 1})
	if err := g.Deploy("echo", 2, echoFactory(nil)); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, g, "echo", 2)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, _ := srv.Client().Get(srv.URL + "/function/echo")
		resp.Body.Close()
	}
	st := g.Debug()
	if st.Router != RouterRoundRobin || !st.Admission {
		t.Fatalf("debug header = %+v", st)
	}
	if len(st.Functions) != 1 || st.Functions[0].Replicas != 2 ||
		st.Functions[0].Admitted != 1 || st.Functions[0].Rejected != 2 {
		t.Fatalf("debug functions = %+v", st.Functions)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].Tenant != "echo" {
		t.Fatalf("debug tenants = %+v", st.Tenants)
	}
	resp, err := srv.Client().Get(srv.URL + "/debug/gateway")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/gateway: %v %v", resp.Status, err)
	}
	resp.Body.Close()
}
