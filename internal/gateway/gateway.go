// Package gateway is the reproduction's serverless platform — the slice
// of OpenFaaS the paper deploys BlastFunction under.
//
// The Gateway is "the serverless system's endpoint, which forwards the
// requests to the functions and handles autoscaling". It deploys functions
// by creating function instances through the cluster orchestrator (where
// the Accelerators Registry intercepts and patches them), materializes
// each Running instance with the function's Factory (the function runtime:
// in a real deployment this is the container starting; here it builds the
// HTTP handler backed by an ocl client), and routes /function/<name>
// requests across ready instances through a pluggable Router (round-robin
// by default), behind optional per-tenant token-bucket admission control.
package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blastfunction/internal/cluster"
	"blastfunction/internal/flightrec"
	"blastfunction/internal/logx"
	"blastfunction/internal/metrics"
	"blastfunction/internal/obs"
)

// Endpoint is a materialized function instance: an HTTP handler plus its
// teardown.
type Endpoint interface {
	http.Handler
	io.Closer
}

// HandlerEndpoint adapts a plain handler with a close hook.
type HandlerEndpoint struct {
	http.Handler
	CloseFunc func() error
}

// Close implements Endpoint.
func (h HandlerEndpoint) Close() error {
	if h.CloseFunc == nil {
		return nil
	}
	return h.CloseFunc()
}

// Factory materializes a function instance once the orchestrator reports
// it Running. The instance's Env carries whatever the Registry injected
// (Device Manager address, device ID, node).
type Factory func(in cluster.Instance) (Endpoint, error)

// envWeight mirrors registry.EnvWeight: the fair-share weight the
// Registry injects into allocated instances. Read here so the weighted
// router can score endpoints without importing the registry.
const envWeight = "BF_TENANT_WEIGHT"

// FuncStats aggregates per-function gateway statistics.
type FuncStats struct {
	Requests  int64
	Errors    int64
	InFlight  int64
	Replicas  int
	Admitted  int64
	Rejected  int64
	AvgMillis float64
}

// epState is one materialized endpoint with its live routing signals.
type epState struct {
	uid    string
	node   string
	weight int
	ep     Endpoint

	inflight atomic.Int64
	requests atomic.Int64
}

type funcState struct {
	factory Factory
	mu      sync.Mutex
	eps     map[string]*epState // by instance UID
	order   []string
	// rr is the round-robin cursor: an index into order (not a modulo
	// counter), adjusted on removals so a shrinking rotation neither
	// skips nor double-serves the surviving endpoints.
	rr int
	// tie rotates the scan offset of load-based routers so equally
	// loaded endpoints share work instead of the first always winning.
	tie atomic.Int64
	// scaleMu serializes Scale per function: concurrent autoscaler and
	// admin calls otherwise interleave their create/delete batches and
	// over- or under-shoot the replica count.
	scaleMu  sync.Mutex
	requests atomic.Int64
	errors   atomic.Int64
	inflight atomic.Int64
	admitted atomic.Int64
	rejected atomic.Int64
	latSumUs atomic.Int64
}

// nextRR picks the next endpoint in rotation.
func (fs *funcState) nextRR() *epState {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if len(fs.order) == 0 {
		return nil
	}
	if fs.rr >= len(fs.order) {
		fs.rr = 0
	}
	es := fs.eps[fs.order[fs.rr]]
	fs.rr++
	return es
}

// endpoints snapshots the ready endpoints in rotation order.
func (fs *funcState) endpoints() []*epState {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]*epState, 0, len(fs.order))
	for _, uid := range fs.order {
		out = append(out, fs.eps[uid])
	}
	return out
}

// factoryRetries bounds materialization attempts per instance; the delay
// doubles between attempts from factoryRetryDelay.
const (
	factoryRetries    = 5
	factoryRetryDelay = 100 * time.Millisecond
)

// Gateway routes requests to deployed functions.
type Gateway struct {
	cl *cluster.Cluster
	// Log receives deployment issues as structured events; defaults to
	// logx.Default("gateway").
	Log *logx.Logger
	// RetryDelay is the initial factory retry backoff; tests shorten it.
	RetryDelay time.Duration
	// Tracer, when set, is the distributed-tracing span recorder the
	// gateway's function instances share (factories thread it into their
	// remote.Config); Handler serves its ring at /debug/spans. Nil serves
	// an empty span list.
	Tracer *obs.Tracer
	// Router picks the endpoint serving each request; nil falls back to
	// round-robin (the paper's behavior). Set before serving.
	Router Router
	// Admission, when set, gates every /function/ request through the
	// per-tenant token buckets; over-budget requests get 429 with a
	// Retry-After. Nil admits everything.
	Admission *Admission
	// Flight, when set, is the gateway's always-on flight recorder: every
	// /function/ request leaves a milestone skeleton (admitted, routed,
	// complete) under a synthetic per-request key — the front-door leg of a
	// postmortem timeline. Handler serves it at /debug/flight; nil records
	// nothing.
	Flight *flightrec.Recorder
	// Metrics, when set, receives the front-door counters
	// (bf_gateway_admitted_total / bf_gateway_rejected_total per
	// function). Nil skips them.
	Metrics *metrics.Registry
	// OnReady, when set, is called after an instance's factory returns a
	// live endpoint — the moment the function's program build has landed
	// on its board. Registry-backed deployments use it to close the flash
	// window the allocation opened (Registry.BuildLanded).
	OnReady func(in cluster.Instance)

	mu      sync.Mutex
	funcs   map[string]*funcState
	runCtx  context.Context
	stopped bool
}

// New creates a gateway over the cluster.
func New(cl *cluster.Cluster) *Gateway {
	return &Gateway{
		cl:         cl,
		Log:        logx.Default("gateway"),
		RetryDelay: factoryRetryDelay,
		Router:     roundRobinRouter{},
		funcs:      make(map[string]*funcState),
	}
}

// router returns the configured routing policy (round-robin when unset).
func (g *Gateway) router() Router {
	if g.Router == nil {
		return roundRobinRouter{}
	}
	return g.Router
}

// Deploy registers a function and creates replicas instances. Instances
// pre-bound to nodes (for the Native scenario) can be created with
// DeployPinned instead.
func (g *Gateway) Deploy(name string, replicas int, factory Factory) error {
	return g.deploy(name, factory, replicas, nil)
}

// DeployPinned registers a function with one instance pinned per node —
// the paper's Native scenario, one function per board with direct access.
func (g *Gateway) DeployPinned(name string, nodes []string, factory Factory) error {
	return g.deploy(name, factory, len(nodes), nodes)
}

func (g *Gateway) deploy(name string, factory Factory, replicas int, nodes []string) error {
	if name == "" || factory == nil || replicas <= 0 {
		return fmt.Errorf("gateway: bad deployment (name %q, %d replicas)", name, replicas)
	}
	g.mu.Lock()
	if _, ok := g.funcs[name]; ok {
		g.mu.Unlock()
		return fmt.Errorf("gateway: function %q already deployed", name)
	}
	g.funcs[name] = &funcState{factory: factory, eps: make(map[string]*epState)}
	g.mu.Unlock()
	for i := 0; i < replicas; i++ {
		spec := cluster.Instance{Function: name}
		if nodes != nil {
			spec.Node = nodes[i]
		}
		if _, err := g.cl.CreateInstance(spec); err != nil {
			return fmt.Errorf("gateway: creating replica %d of %q: %w", i, name, err)
		}
	}
	return nil
}

// Scale adjusts a function's replica count — the autoscaling hook. It
// creates or deletes instances; the registry reallocates accordingly.
// Calls are serialized per function and reconcile against the cluster's
// live instance list, so concurrent Autoscale and admin calls cannot
// interleave their create/delete batches.
func (g *Gateway) Scale(name string, replicas int) error {
	if replicas < 0 {
		return fmt.Errorf("gateway: negative replica count")
	}
	g.mu.Lock()
	fs := g.funcs[name]
	g.mu.Unlock()
	if fs == nil {
		return fmt.Errorf("gateway: function %q not deployed", name)
	}
	fs.scaleMu.Lock()
	defer fs.scaleMu.Unlock()
	current := g.cl.Instances(name)
	for i := len(current); i < replicas; i++ {
		if _, err := g.cl.CreateInstance(cluster.Instance{Function: name}); err != nil {
			return err
		}
	}
	for i := len(current) - 1; i >= replicas; i-- {
		if err := g.cl.DeleteInstance(current[i].UID); err != nil {
			return err
		}
	}
	return nil
}

// ClusterReplicas reports the function's instance count in the cluster —
// the ground truth Scale reconciles against, which leads ReadyReplicas
// while factories are still materializing.
func (g *Gateway) ClusterReplicas(name string) int {
	return len(g.cl.Instances(name))
}

// Run materializes instances from cluster events until ctx is cancelled.
// Call it after deploying at least the factories you expect events for;
// instances of unknown functions are ignored (they belong to other
// controllers).
func (g *Gateway) Run(ctx context.Context) {
	g.mu.Lock()
	g.runCtx = ctx
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.stopped = true
		g.mu.Unlock()
	}()
	events, cancel := g.cl.Watch(64)
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			g.handle(ev)
		}
	}
}

func (g *Gateway) handle(ev cluster.Event) {
	g.mu.Lock()
	fs := g.funcs[ev.Instance.Function]
	g.mu.Unlock()
	if fs == nil {
		return
	}
	switch ev.Type {
	case cluster.Added, cluster.Modified:
		if ev.Instance.Phase != cluster.Running {
			return
		}
		g.materialize(fs, ev.Instance, 0)
	case cluster.Deleted:
		fs.mu.Lock()
		es, ok := fs.eps[ev.Instance.UID]
		if ok {
			delete(fs.eps, ev.Instance.UID)
			for i, uid := range fs.order {
				if uid == ev.Instance.UID {
					fs.order = append(fs.order[:i], fs.order[i+1:]...)
					// Keep the rotation aligned: everything before the
					// cursor shifted left by one, so the cursor follows.
					if i < fs.rr {
						fs.rr--
					}
					break
				}
			}
		}
		fs.mu.Unlock()
		if ok {
			es.ep.Close()
		}
	}
}

// materialize runs the function factory for a Running instance, retrying
// transient failures with exponential backoff (e.g. a Device Manager that
// has not finished starting). Retries abandon silently if the instance
// disappeared in the meantime.
func (g *Gateway) materialize(fs *funcState, in cluster.Instance, attempt int) {
	g.mu.Lock()
	ctx, stopped := g.runCtx, g.stopped
	g.mu.Unlock()
	if stopped || (ctx != nil && ctx.Err() != nil) {
		return // the gateway shut down; abandon retries
	}
	fs.mu.Lock()
	_, exists := fs.eps[in.UID]
	fs.mu.Unlock()
	if exists {
		return
	}
	if cur, ok := g.cl.Get(in.UID); !ok || cur.Phase != cluster.Running {
		return // deleted or rescheduled while we were retrying
	}
	ep, err := fs.factory(in)
	if err != nil {
		if attempt+1 >= factoryRetries {
			g.Log.Error("gateway: starting instance failed, giving up",
				"instance", in.Name, "function", in.Function, "err", err, "attempts", attempt+1)
			return
		}
		delay := g.RetryDelay << attempt
		g.Log.Warn("gateway: starting instance failed, will retry",
			"instance", in.Name, "function", in.Function, "err", err, "retry_in", delay)
		time.AfterFunc(delay, func() { g.materialize(fs, in, attempt+1) })
		return
	}
	weight, _ := strconv.Atoi(in.Env[envWeight])
	es := &epState{uid: in.UID, node: in.Node, weight: weight, ep: ep}
	fs.mu.Lock()
	if _, exists := fs.eps[in.UID]; exists {
		fs.mu.Unlock()
		ep.Close()
		return
	}
	fs.eps[in.UID] = es
	fs.order = append(fs.order, in.UID)
	fs.mu.Unlock()
	if g.OnReady != nil {
		g.OnReady(in)
	}
}

// Handler serves the gateway API:
//
//	ANY /function/<name>   invoke the function
//	GET /system/functions  list deployments and statistics
//	GET /debug/gateway     admission + routing state (JSON)
//	GET /debug/spans       client-side distributed-tracing spans
//	GET /debug/flight      front-door flight-recorder skeletons
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/function/", g.serveFunction)
	mux.Handle("/debug/spans", g.Tracer.Handler())
	mux.Handle("/debug/flight", g.Flight.Handler())
	mux.HandleFunc("/debug/gateway", g.serveDebug)
	mux.HandleFunc("/system/functions", func(w http.ResponseWriter, _ *http.Request) {
		g.mu.Lock()
		names := make([]string, 0, len(g.funcs))
		for n := range g.funcs {
			names = append(names, n)
		}
		g.mu.Unlock()
		fmt.Fprintln(w, "function requests errors inflight replicas avg_ms")
		for _, n := range names {
			s := g.Stats(n)
			fmt.Fprintf(w, "%s %d %d %d %d %.3f\n",
				n, s.Requests, s.Errors, s.InFlight, s.Replicas, s.AvgMillis)
		}
	})
	return mux
}

// serveFunction is the front door: admission, routing, then the endpoint.
func (g *Gateway) serveFunction(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/function/")
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	g.mu.Lock()
	fs := g.funcs[name]
	g.mu.Unlock()
	if fs == nil {
		http.Error(w, fmt.Sprintf("function %q not found", name), http.StatusNotFound)
		return
	}
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = name
	}
	// Front-door flight: a synthetic per-request key (no trace exists yet
	// at admission time), tenant-attributed for tail detection.
	flight := g.Flight.Begin(0, tenant)
	admStart := time.Now()
	if g.Admission != nil {
		ok, retryAfter := g.Admission.Admit(tenant)
		if !ok {
			fs.rejected.Add(1)
			g.countAdmission("bf_gateway_rejected_total", name)
			secs := int(retryAfter/time.Second) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			g.Flight.Record(flight, flightrec.Event{
				Kind: flightrec.KindFailure, Dur: time.Since(admStart),
				Detail: "admission rejected (429), retry after " + strconv.Itoa(secs) + "s"})
			g.Flight.Complete(flight, time.Since(admStart), true, "over admission budget")
			http.Error(w, fmt.Sprintf("tenant %q over admission budget", tenant),
				http.StatusTooManyRequests)
			return
		}
		fs.admitted.Add(1)
		g.countAdmission("bf_gateway_admitted_total", name)
	}
	g.Flight.Record(flight, flightrec.Event{
		Kind: flightrec.KindAdmitted, Dur: time.Since(admStart), Detail: name})
	es := g.router().Pick(fs, RouteHint{Node: r.Header.Get(AffinityHeader)})
	if es == nil {
		g.Flight.Record(flight, flightrec.Event{
			Kind: flightrec.KindFailure, Detail: "no ready instances"})
		g.Flight.Complete(flight, time.Since(admStart), true, "no ready instances")
		http.Error(w, fmt.Sprintf("function %q has no ready instances", name), http.StatusServiceUnavailable)
		return
	}
	g.Flight.Record(flight, flightrec.Event{
		Kind: flightrec.KindRouted, Detail: fmt.Sprintf("%T -> %s on %s", g.router(), es.uid, es.node)})
	fs.requests.Add(1)
	es.requests.Add(1)
	fs.inflight.Add(1)
	es.inflight.Add(1)
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	// The decrements and accounting are deferred so a panicking endpoint
	// cannot leak the in-flight counts: a leak would permanently inflate
	// the autoscaler's signal and poison least-inflight routing.
	defer func() {
		es.inflight.Add(-1)
		fs.inflight.Add(-1)
		elapsed := time.Since(start)
		fs.latSumUs.Add(elapsed.Microseconds())
		failed := false
		cause := ""
		if rec := recover(); rec != nil {
			failed = true
			cause = "endpoint panicked"
			fs.errors.Add(1)
			g.Log.Error("gateway: endpoint panicked",
				"function", name, "instance", es.uid, "panic", fmt.Sprint(rec))
			if !sw.wrote {
				http.Error(sw.ResponseWriter, "internal function error", http.StatusInternalServerError)
			}
		} else if sw.status >= 400 {
			failed = true
			cause = "endpoint returned HTTP " + strconv.Itoa(sw.status)
			fs.errors.Add(1)
		}
		if failed {
			g.Flight.Record(flight, flightrec.Event{
				Kind: flightrec.KindFailure, Detail: cause})
		}
		g.Flight.Complete(flight, elapsed, failed, cause)
		// Per-function request/error counters and the latency histogram
		// are the gateway-side SLIs the SLO engine reads (availability
		// goal and front-door quantiles).
		g.countFunction(name, elapsed, failed)
	}()
	es.ep.ServeHTTP(sw, r)
}

// countFunction records one served request into the exported SLI
// series when a metrics registry is attached.
func (g *Gateway) countFunction(function string, elapsed time.Duration, failed bool) {
	if g.Metrics == nil {
		return
	}
	lbl := metrics.Labels{"function": function}
	g.Metrics.Counter("bf_function_requests_total",
		"Requests the gateway routed to the function.", lbl).Inc()
	if failed {
		g.Metrics.Counter("bf_function_errors_total",
			"Routed requests that failed (HTTP >= 400 or panic).", lbl).Inc()
	}
	g.Metrics.Histogram("bf_function_latency_seconds",
		"Front-door request latency per function.", lbl, nil).Observe(elapsed.Seconds())
}

// countAdmission bumps a front-door counter when a metrics registry is
// attached.
func (g *Gateway) countAdmission(series, function string) {
	if g.Metrics == nil {
		return
	}
	g.Metrics.Counter(series, "gateway admission decisions",
		metrics.Labels{"function": function}).Inc()
}

// DebugEndpoint is one endpoint's routing view in /debug/gateway.
type DebugEndpoint struct {
	UID      string `json:"uid"`
	Node     string `json:"node"`
	Weight   int    `json:"weight"`
	InFlight int64  `json:"inflight"`
	Requests int64  `json:"requests"`
}

// DebugFunction is one function's front-door view in /debug/gateway.
type DebugFunction struct {
	Function  string          `json:"function"`
	Requests  int64           `json:"requests"`
	Errors    int64           `json:"errors"`
	InFlight  int64           `json:"inflight"`
	Replicas  int             `json:"replicas"`
	Admitted  int64           `json:"admitted"`
	Rejected  int64           `json:"rejected"`
	AvgMillis float64         `json:"avg_ms"`
	Endpoints []DebugEndpoint `json:"endpoints"`
}

// DebugState is the /debug/gateway document: the routing policy, whether
// admission is on, per-function stats with per-endpoint load, and the
// admission tenants.
type DebugState struct {
	Router    string            `json:"router"`
	Admission bool              `json:"admission"`
	Functions []DebugFunction   `json:"functions"`
	Tenants   []TenantAdmission `json:"tenants,omitempty"`
}

// Debug assembles the front-door state served at /debug/gateway.
func (g *Gateway) Debug() DebugState {
	st := DebugState{Router: g.router().Name(), Admission: g.Admission != nil}
	g.mu.Lock()
	names := make([]string, 0, len(g.funcs))
	for n := range g.funcs {
		names = append(names, n)
	}
	g.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		g.mu.Lock()
		fs := g.funcs[n]
		g.mu.Unlock()
		if fs == nil {
			continue
		}
		df := DebugFunction{
			Function: n,
			Requests: fs.requests.Load(),
			Errors:   fs.errors.Load(),
			InFlight: fs.inflight.Load(),
			Admitted: fs.admitted.Load(),
			Rejected: fs.rejected.Load(),
		}
		if df.Requests > 0 {
			df.AvgMillis = float64(fs.latSumUs.Load()) / float64(df.Requests) / 1000
		}
		for _, es := range fs.endpoints() {
			df.Endpoints = append(df.Endpoints, DebugEndpoint{
				UID: es.uid, Node: es.node, Weight: es.weight,
				InFlight: es.inflight.Load(), Requests: es.requests.Load(),
			})
		}
		df.Replicas = len(df.Endpoints)
		st.Functions = append(st.Functions, df)
	}
	if g.Admission != nil {
		st.Tenants = g.Admission.Snapshot()
	}
	return st
}

func (g *Gateway) serveDebug(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(g.Debug())
}

type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.wrote = true
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(p)
}

// Stats returns a function's gateway statistics.
func (g *Gateway) Stats(name string) FuncStats {
	g.mu.Lock()
	fs := g.funcs[name]
	g.mu.Unlock()
	if fs == nil {
		return FuncStats{}
	}
	fs.mu.Lock()
	replicas := len(fs.order)
	fs.mu.Unlock()
	st := FuncStats{
		Requests: fs.requests.Load(),
		Errors:   fs.errors.Load(),
		InFlight: fs.inflight.Load(),
		Admitted: fs.admitted.Load(),
		Rejected: fs.rejected.Load(),
		Replicas: replicas,
	}
	if st.Requests > 0 {
		st.AvgMillis = float64(fs.latSumUs.Load()) / float64(st.Requests) / 1000
	}
	return st
}

// ReadyReplicas reports how many instances of a function are serving.
func (g *Gateway) ReadyReplicas(name string) int {
	return g.Stats(name).Replicas
}
