// Package gateway is the reproduction's serverless platform — the slice
// of OpenFaaS the paper deploys BlastFunction under.
//
// The Gateway is "the serverless system's endpoint, which forwards the
// requests to the functions and handles autoscaling". It deploys functions
// by creating function instances through the cluster orchestrator (where
// the Accelerators Registry intercepts and patches them), materializes
// each Running instance with the function's Factory (the function runtime:
// in a real deployment this is the container starting; here it builds the
// HTTP handler backed by an ocl client), and routes /function/<name>
// requests round-robin across ready instances.
package gateway

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blastfunction/internal/cluster"
	"blastfunction/internal/logx"
	"blastfunction/internal/obs"
)

// Endpoint is a materialized function instance: an HTTP handler plus its
// teardown.
type Endpoint interface {
	http.Handler
	io.Closer
}

// HandlerEndpoint adapts a plain handler with a close hook.
type HandlerEndpoint struct {
	http.Handler
	CloseFunc func() error
}

// Close implements Endpoint.
func (h HandlerEndpoint) Close() error {
	if h.CloseFunc == nil {
		return nil
	}
	return h.CloseFunc()
}

// Factory materializes a function instance once the orchestrator reports
// it Running. The instance's Env carries whatever the Registry injected
// (Device Manager address, device ID, node).
type Factory func(in cluster.Instance) (Endpoint, error)

// FuncStats aggregates per-function gateway statistics.
type FuncStats struct {
	Requests  int64
	Errors    int64
	InFlight  int64
	Replicas  int
	AvgMillis float64
}

type funcState struct {
	factory  Factory
	mu       sync.Mutex
	eps      map[string]Endpoint // by instance UID
	order    []string
	rr       int
	requests atomic.Int64
	errors   atomic.Int64
	inflight atomic.Int64
	latSumUs atomic.Int64
}

// factoryRetries bounds materialization attempts per instance; the delay
// doubles between attempts from factoryRetryDelay.
const (
	factoryRetries    = 5
	factoryRetryDelay = 100 * time.Millisecond
)

// Gateway routes requests to deployed functions.
type Gateway struct {
	cl *cluster.Cluster
	// Log receives deployment issues as structured events; defaults to
	// logx.Default("gateway").
	Log *logx.Logger
	// RetryDelay is the initial factory retry backoff; tests shorten it.
	RetryDelay time.Duration
	// Tracer, when set, is the distributed-tracing span recorder the
	// gateway's function instances share (factories thread it into their
	// remote.Config); Handler serves its ring at /debug/spans. Nil serves
	// an empty span list.
	Tracer *obs.Tracer

	mu      sync.Mutex
	funcs   map[string]*funcState
	runCtx  context.Context
	stopped bool
}

// New creates a gateway over the cluster.
func New(cl *cluster.Cluster) *Gateway {
	return &Gateway{
		cl:         cl,
		Log:        logx.Default("gateway"),
		RetryDelay: factoryRetryDelay,
		funcs:      make(map[string]*funcState),
	}
}

// Deploy registers a function and creates replicas instances. Instances
// pre-bound to nodes (for the Native scenario) can be created with
// DeployPinned instead.
func (g *Gateway) Deploy(name string, replicas int, factory Factory) error {
	return g.deploy(name, factory, replicas, nil)
}

// DeployPinned registers a function with one instance pinned per node —
// the paper's Native scenario, one function per board with direct access.
func (g *Gateway) DeployPinned(name string, nodes []string, factory Factory) error {
	return g.deploy(name, factory, len(nodes), nodes)
}

func (g *Gateway) deploy(name string, factory Factory, replicas int, nodes []string) error {
	if name == "" || factory == nil || replicas <= 0 {
		return fmt.Errorf("gateway: bad deployment (name %q, %d replicas)", name, replicas)
	}
	g.mu.Lock()
	if _, ok := g.funcs[name]; ok {
		g.mu.Unlock()
		return fmt.Errorf("gateway: function %q already deployed", name)
	}
	g.funcs[name] = &funcState{factory: factory, eps: make(map[string]Endpoint)}
	g.mu.Unlock()
	for i := 0; i < replicas; i++ {
		spec := cluster.Instance{Function: name}
		if nodes != nil {
			spec.Node = nodes[i]
		}
		if _, err := g.cl.CreateInstance(spec); err != nil {
			return fmt.Errorf("gateway: creating replica %d of %q: %w", i, name, err)
		}
	}
	return nil
}

// Scale adjusts a function's replica count — the autoscaling hook. It
// creates or deletes instances; the registry reallocates accordingly.
func (g *Gateway) Scale(name string, replicas int) error {
	if replicas < 0 {
		return fmt.Errorf("gateway: negative replica count")
	}
	g.mu.Lock()
	_, ok := g.funcs[name]
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("gateway: function %q not deployed", name)
	}
	current := g.cl.Instances(name)
	for len(current) < replicas {
		if _, err := g.cl.CreateInstance(cluster.Instance{Function: name}); err != nil {
			return err
		}
		current = append(current, cluster.Instance{})
	}
	for i := len(current) - 1; i >= replicas; i-- {
		if current[i].UID == "" {
			continue
		}
		if err := g.cl.DeleteInstance(current[i].UID); err != nil {
			return err
		}
	}
	return nil
}

// Run materializes instances from cluster events until ctx is cancelled.
// Call it after deploying at least the factories you expect events for;
// instances of unknown functions are ignored (they belong to other
// controllers).
func (g *Gateway) Run(ctx context.Context) {
	g.mu.Lock()
	g.runCtx = ctx
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.stopped = true
		g.mu.Unlock()
	}()
	events, cancel := g.cl.Watch(64)
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			g.handle(ev)
		}
	}
}

func (g *Gateway) handle(ev cluster.Event) {
	g.mu.Lock()
	fs := g.funcs[ev.Instance.Function]
	g.mu.Unlock()
	if fs == nil {
		return
	}
	switch ev.Type {
	case cluster.Added, cluster.Modified:
		if ev.Instance.Phase != cluster.Running {
			return
		}
		g.materialize(fs, ev.Instance, 0)
	case cluster.Deleted:
		fs.mu.Lock()
		ep, ok := fs.eps[ev.Instance.UID]
		if ok {
			delete(fs.eps, ev.Instance.UID)
			for i, uid := range fs.order {
				if uid == ev.Instance.UID {
					fs.order = append(fs.order[:i], fs.order[i+1:]...)
					break
				}
			}
		}
		fs.mu.Unlock()
		if ok {
			ep.Close()
		}
	}
}

// materialize runs the function factory for a Running instance, retrying
// transient failures with exponential backoff (e.g. a Device Manager that
// has not finished starting). Retries abandon silently if the instance
// disappeared in the meantime.
func (g *Gateway) materialize(fs *funcState, in cluster.Instance, attempt int) {
	g.mu.Lock()
	ctx, stopped := g.runCtx, g.stopped
	g.mu.Unlock()
	if stopped || (ctx != nil && ctx.Err() != nil) {
		return // the gateway shut down; abandon retries
	}
	fs.mu.Lock()
	_, exists := fs.eps[in.UID]
	fs.mu.Unlock()
	if exists {
		return
	}
	if cur, ok := g.cl.Get(in.UID); !ok || cur.Phase != cluster.Running {
		return // deleted or rescheduled while we were retrying
	}
	ep, err := fs.factory(in)
	if err != nil {
		if attempt+1 >= factoryRetries {
			g.Log.Error("gateway: starting instance failed, giving up",
				"instance", in.Name, "function", in.Function, "err", err, "attempts", attempt+1)
			return
		}
		delay := g.RetryDelay << attempt
		g.Log.Warn("gateway: starting instance failed, will retry",
			"instance", in.Name, "function", in.Function, "err", err, "retry_in", delay)
		time.AfterFunc(delay, func() { g.materialize(fs, in, attempt+1) })
		return
	}
	fs.mu.Lock()
	if _, exists := fs.eps[in.UID]; exists {
		fs.mu.Unlock()
		ep.Close()
		return
	}
	fs.eps[in.UID] = ep
	fs.order = append(fs.order, in.UID)
	fs.mu.Unlock()
}

// next picks an endpoint round-robin.
func (fs *funcState) next() Endpoint {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if len(fs.order) == 0 {
		return nil
	}
	uid := fs.order[fs.rr%len(fs.order)]
	fs.rr++
	return fs.eps[uid]
}

// Handler serves the gateway API:
//
//	ANY /function/<name>   invoke the function
//	GET /system/functions  list deployments and statistics
//	GET /debug/spans       client-side distributed-tracing spans
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/function/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/function/")
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[:i]
		}
		g.mu.Lock()
		fs := g.funcs[name]
		g.mu.Unlock()
		if fs == nil {
			http.Error(w, fmt.Sprintf("function %q not found", name), http.StatusNotFound)
			return
		}
		ep := fs.next()
		if ep == nil {
			http.Error(w, fmt.Sprintf("function %q has no ready instances", name), http.StatusServiceUnavailable)
			return
		}
		fs.requests.Add(1)
		fs.inflight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		ep.ServeHTTP(sw, r)
		fs.inflight.Add(-1)
		fs.latSumUs.Add(time.Since(start).Microseconds())
		if sw.status >= 400 {
			fs.errors.Add(1)
		}
	})
	mux.Handle("/debug/spans", g.Tracer.Handler())
	mux.HandleFunc("/system/functions", func(w http.ResponseWriter, _ *http.Request) {
		g.mu.Lock()
		names := make([]string, 0, len(g.funcs))
		for n := range g.funcs {
			names = append(names, n)
		}
		g.mu.Unlock()
		fmt.Fprintln(w, "function requests errors inflight replicas avg_ms")
		for _, n := range names {
			s := g.Stats(n)
			fmt.Fprintf(w, "%s %d %d %d %d %.3f\n",
				n, s.Requests, s.Errors, s.InFlight, s.Replicas, s.AvgMillis)
		}
	})
	return mux
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// Stats returns a function's gateway statistics.
func (g *Gateway) Stats(name string) FuncStats {
	g.mu.Lock()
	fs := g.funcs[name]
	g.mu.Unlock()
	if fs == nil {
		return FuncStats{}
	}
	fs.mu.Lock()
	replicas := len(fs.order)
	fs.mu.Unlock()
	st := FuncStats{
		Requests: fs.requests.Load(),
		Errors:   fs.errors.Load(),
		InFlight: fs.inflight.Load(),
		Replicas: replicas,
	}
	if st.Requests > 0 {
		st.AvgMillis = float64(fs.latSumUs.Load()) / float64(st.Requests) / 1000
	}
	return st
}

// ReadyReplicas reports how many instances of a function are serving.
func (g *Gateway) ReadyReplicas(name string) int {
	return g.Stats(name).Replicas
}
