package gateway

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"blastfunction/internal/cluster"
	"blastfunction/internal/logx"
)

// echoFactory builds endpoints that answer with the instance name; closed
// endpoints are counted.
func echoFactory(closed *atomic.Int32) Factory {
	return func(in cluster.Instance) (Endpoint, error) {
		name := in.Name
		return HandlerEndpoint{
			Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				fmt.Fprint(w, name)
			}),
			CloseFunc: func() error {
				if closed != nil {
					closed.Add(1)
				}
				return nil
			},
		}, nil
	}
}

// startGateway builds a cluster + gateway with a trivial binder that
// schedules pending instances onto node "X" (standing in for the
// Registry's controller).
func startGateway(t *testing.T) (*Gateway, *cluster.Cluster) {
	t.Helper()
	cl := cluster.New()
	if err := cl.AddNode(cluster.Node{Name: "X"}); err != nil {
		t.Fatal(err)
	}
	g := New(cl)
	g.Log = logx.NewLogf("gateway", t.Logf)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go g.Run(ctx)
	// Minimal scheduler: bind anything pending.
	go func() {
		events, cancelW := cl.Watch(64)
		defer cancelW()
		node := "X"
		for {
			select {
			case <-ctx.Done():
				return
			case ev, ok := <-events:
				if !ok {
					return
				}
				if ev.Type == cluster.Added && ev.Instance.Phase == cluster.Pending {
					cl.PatchInstance(ev.Instance.UID, cluster.Patch{Node: &node})
				}
			}
		}
	}()
	return g, cl
}

func waitReplicas(t *testing.T, g *Gateway, fn string, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if g.ReadyReplicas(fn) == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("function %q never reached %d replicas (have %d)", fn, n, g.ReadyReplicas(fn))
}

func TestDeployAndInvoke(t *testing.T) {
	g, _ := startGateway(t)
	if err := g.Deploy("echo", 2, echoFactory(nil)); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, g, "echo", 2)

	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		resp, err := srv.Client().Get(srv.URL + "/function/echo")
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 64)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		seen[string(body[:n])]++
	}
	if len(seen) != 2 {
		t.Fatalf("round robin hit %d instances, want 2: %v", len(seen), seen)
	}
	for name, count := range seen {
		if count != 3 {
			t.Fatalf("instance %q served %d/6", name, count)
		}
	}
	st := g.Stats("echo")
	if st.Requests != 6 || st.Errors != 0 || st.Replicas != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvokeUnknownAndUnready(t *testing.T) {
	g, _ := startGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	resp, _ := srv.Client().Get(srv.URL + "/function/ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost = %v", resp.Status)
	}
	// Deployed but factory never ran (no instances yet): 503.
	g.Deploy("pending", 1, func(in cluster.Instance) (Endpoint, error) {
		return nil, fmt.Errorf("not yet")
	})
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		resp, _ = srv.Client().Get(srv.URL + "/function/pending")
		if resp.StatusCode == http.StatusServiceUnavailable {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("pending function = %v, want 503", resp.Status)
}

func TestScaleUpAndDown(t *testing.T) {
	var closed atomic.Int32
	g, cl := startGateway(t)
	if err := g.Deploy("svc", 1, echoFactory(&closed)); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, g, "svc", 1)
	if err := g.Scale("svc", 3); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, g, "svc", 3)
	if got := len(cl.Instances("svc")); got != 3 {
		t.Fatalf("cluster instances = %d", got)
	}
	if err := g.Scale("svc", 1); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, g, "svc", 1)
	deadline := time.Now().Add(time.Second)
	for closed.Load() != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if closed.Load() != 2 {
		t.Fatalf("closed endpoints = %d, want 2", closed.Load())
	}
	if err := g.Scale("ghost", 1); err == nil {
		t.Fatal("scaling unknown function must fail")
	}
	if err := g.Scale("svc", -1); err == nil {
		t.Fatal("negative scale must fail")
	}
}

func TestDeployPinned(t *testing.T) {
	cl := cluster.New()
	for _, n := range []string{"A", "B", "C"} {
		cl.AddNode(cluster.Node{Name: n})
	}
	g := New(cl)
	g.Log = logx.NewLogf("gateway", t.Logf)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go g.Run(ctx)
	if err := g.DeployPinned("native-sobel", []string{"A", "B", "C"}, echoFactory(nil)); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, g, "native-sobel", 3)
	nodes := map[string]bool{}
	for _, in := range cl.Instances("native-sobel") {
		nodes[in.Node] = true
		if in.Phase != cluster.Running {
			t.Fatalf("pinned instance %s phase = %v", in.Name, in.Phase)
		}
	}
	if len(nodes) != 3 {
		t.Fatalf("pinned nodes = %v", nodes)
	}
}

func TestDeployValidation(t *testing.T) {
	g, _ := startGateway(t)
	if err := g.Deploy("", 1, echoFactory(nil)); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := g.Deploy("x", 0, echoFactory(nil)); err == nil {
		t.Fatal("zero replicas must fail")
	}
	if err := g.Deploy("dup", 1, echoFactory(nil)); err != nil {
		t.Fatal(err)
	}
	if err := g.Deploy("dup", 1, echoFactory(nil)); err == nil {
		t.Fatal("duplicate deploy must fail")
	}
}

func TestErrorsCounted(t *testing.T) {
	g, _ := startGateway(t)
	g.Deploy("failing", 1, func(in cluster.Instance) (Endpoint, error) {
		return HandlerEndpoint{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		})}, nil
	})
	waitReplicas(t, g, "failing", 1)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	srv.Client().Get(srv.URL + "/function/failing")
	st := g.Stats("failing")
	if st.Requests != 1 || st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSystemFunctionsEndpoint(t *testing.T) {
	g, _ := startGateway(t)
	g.Deploy("listed", 1, echoFactory(nil))
	waitReplicas(t, g, "listed", 1)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/system/functions")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("system endpoint: %v %v", resp.Status, err)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	if want := "listed"; !strings.Contains(string(buf[:n]), want) {
		t.Fatalf("listing missing %q:\n%s", want, buf[:n])
	}
}

func TestAutoscaleScalesOutUnderLoad(t *testing.T) {
	g, _ := startGateway(t)
	block := make(chan struct{})
	g.Deploy("busy", 1, func(in cluster.Instance) (Endpoint, error) {
		return HandlerEndpoint{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			<-block
		})}, nil
	})
	waitReplicas(t, g, "busy", 1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go g.Autoscale(ctx, AutoscaleConfig{
		Function:       "busy",
		Min:            1,
		Max:            3,
		TargetInFlight: 1,
		Interval:       10 * time.Millisecond,
	})

	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	// Saturate the single replica with parked requests.
	for i := 0; i < 6; i++ {
		go srv.Client().Get(srv.URL + "/function/busy")
	}
	deadline := time.Now().Add(3 * time.Second)
	for g.ReadyReplicas("busy") < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	scaledOut := g.ReadyReplicas("busy")
	close(block) // release the parked requests
	if scaledOut < 2 {
		t.Fatalf("autoscaler never scaled out (replicas = %d)", scaledOut)
	}
	// Load gone: scale back in to the floor.
	deadline = time.Now().Add(3 * time.Second)
	for g.ReadyReplicas("busy") > 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := g.ReadyReplicas("busy"); got != 1 {
		t.Fatalf("autoscaler did not scale in (replicas = %d)", got)
	}
}

func TestAutoscaleEnforcesFloor(t *testing.T) {
	g, _ := startGateway(t)
	g.Deploy("floor", 1, echoFactory(nil))
	waitReplicas(t, g, "floor", 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go g.Autoscale(ctx, AutoscaleConfig{Function: "floor", Min: 2, Max: 4,
		TargetInFlight: 10, Interval: 10 * time.Millisecond})
	waitReplicas(t, g, "floor", 2)
}

func TestFactoryRetriesTransientFailures(t *testing.T) {
	g, _ := startGateway(t)
	g.RetryDelay = 5 * time.Millisecond
	var attempts atomic.Int32
	g.Deploy("flaky", 1, func(in cluster.Instance) (Endpoint, error) {
		if attempts.Add(1) < 3 {
			return nil, fmt.Errorf("manager not up yet")
		}
		return echoFactory(nil)(in)
	})
	waitReplicas(t, g, "flaky", 1)
	if got := attempts.Load(); got != 3 {
		t.Fatalf("factory attempts = %d, want 3", got)
	}
}

func TestFactoryRetryAbandonsDeletedInstance(t *testing.T) {
	g, cl := startGateway(t)
	g.RetryDelay = 5 * time.Millisecond
	var attempts atomic.Int32
	g.Deploy("doomed", 1, func(in cluster.Instance) (Endpoint, error) {
		attempts.Add(1)
		return nil, fmt.Errorf("never works")
	})
	// Wait for the first attempt, then delete the instance; retries must
	// stop well before the cap.
	deadline := time.Now().Add(time.Second)
	for attempts.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for _, in := range cl.Instances("doomed") {
		cl.DeleteInstance(in.UID)
	}
	time.Sleep(100 * time.Millisecond)
	if got := attempts.Load(); got >= 5 {
		t.Fatalf("retries did not stop after deletion (%d attempts)", got)
	}
	if g.ReadyReplicas("doomed") != 0 {
		t.Fatal("doomed function must have no replicas")
	}
}
