package gateway

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Request headers the front door consults.
const (
	// TenantHeader names the tenant a request belongs to for admission
	// control; absent, the function name is the tenant.
	TenantHeader = "X-BF-Tenant"
	// AffinityHeader is the shm-affinity hint the locality router
	// prefers: the node the caller (or its data) lives on.
	AffinityHeader = "X-BF-Node"
)

// Budget is one tenant's admission budget: a token bucket refilled at
// Rate requests/second up to Burst tokens, both scaled by the priority
// class.
type Budget struct {
	// Rate is the sustained admitted request rate (tokens per second).
	Rate float64
	// Burst is the bucket capacity (how much a quiet tenant can save up).
	Burst float64
	// Priority multiplies Rate and Burst: a priority-3 tenant sustains
	// three times the budget of a priority-1 tenant on the same spec.
	// Zero means priority 1.
	Priority int
}

// effective returns the budget with the priority multiplier applied.
func (b Budget) effective() (rate, burst float64) {
	p := float64(b.Priority)
	if p < 1 {
		p = 1
	}
	rate, burst = b.Rate*p, b.Burst*p
	if burst < 1 {
		burst = 1
	}
	return rate, burst
}

// tokenBucket is one tenant's live bucket plus its admission counters.
type tokenBucket struct {
	tokens   float64
	last     time.Time
	admitted uint64
	rejected uint64
}

// Admission is the gateway's per-tenant token-bucket admission
// controller. Each tenant draws from its own bucket (override or the
// default budget); an empty bucket rejects with the time until the next
// token, which the handler surfaces as 429 + Retry-After.
type Admission struct {
	// Now is injectable for deterministic tests; defaults to time.Now.
	Now func() time.Time

	mu        sync.Mutex
	def       Budget
	overrides map[string]Budget
	buckets   map[string]*tokenBucket
}

// NewAdmission creates an admission controller with the given default
// per-tenant budget.
func NewAdmission(def Budget) *Admission {
	return &Admission{
		Now:       time.Now,
		def:       def,
		overrides: make(map[string]Budget),
		buckets:   make(map[string]*tokenBucket),
	}
}

// SetBudget overrides one tenant's budget (and resets its bucket to the
// new burst so the change takes effect immediately).
func (a *Admission) SetBudget(tenant string, b Budget) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.overrides[tenant] = b
	delete(a.buckets, tenant)
}

// budgetFor returns the budget governing a tenant. Called with a.mu held.
func (a *Admission) budgetFor(tenant string) Budget {
	if b, ok := a.overrides[tenant]; ok {
		return b
	}
	return a.def
}

// Admit draws one token from the tenant's bucket. When the bucket is
// empty it reports false and how long until the next token accrues — the
// Retry-After the handler returns with the 429.
func (a *Admission) Admit(tenant string) (ok bool, retryAfter time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.Now()
	rate, burst := a.budgetFor(tenant).effective()
	tb := a.buckets[tenant]
	if tb == nil {
		tb = &tokenBucket{tokens: burst, last: now}
		a.buckets[tenant] = tb
	}
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens = math.Min(burst, tb.tokens+rate*dt)
	}
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		tb.admitted++
		return true, 0
	}
	tb.rejected++
	if rate <= 0 {
		// A zero-rate tenant is hard-blocked; advertise a long, finite
		// backoff rather than dividing by zero.
		return false, time.Hour
	}
	return false, time.Duration((1 - tb.tokens) / rate * float64(time.Second))
}

// TenantAdmission is one tenant's live admission state, served from
// /debug/gateway for blastctl top.
type TenantAdmission struct {
	Tenant   string  `json:"tenant"`
	Rate     float64 `json:"rate"`
	Burst    float64 `json:"burst"`
	Priority int     `json:"priority"`
	Tokens   float64 `json:"tokens"`
	Admitted uint64  `json:"admitted"`
	Rejected uint64  `json:"rejected"`
}

// Snapshot lists every tenant that has hit the front door, sorted by
// rejected count descending (the throttled tenants first), then name.
func (a *Admission) Snapshot() []TenantAdmission {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TenantAdmission, 0, len(a.buckets))
	for tenant, tb := range a.buckets {
		b := a.budgetFor(tenant)
		rate, burst := b.effective()
		p := b.Priority
		if p < 1 {
			p = 1
		}
		out = append(out, TenantAdmission{
			Tenant: tenant, Rate: rate, Burst: burst, Priority: p,
			Tokens: tb.tokens, Admitted: tb.admitted, Rejected: tb.rejected,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rejected != out[j].Rejected {
			return out[i].Rejected > out[j].Rejected
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}

// ParseAdmission builds an admission controller from -admission flag
// values. Each spec is "rate:burst[:priority]" — the default per-tenant
// budget — or "tenant=rate:burst[:priority]" for a per-tenant override:
//
//	-admission 50:100                   every tenant: 50 rps, burst 100
//	-admission gold=500:1000:2          tenant "gold": 2x(500 rps, burst 1000)
//
// At least one default (unprefixed) spec is required so unknown tenants
// have a budget.
func ParseAdmission(specs []string) (*Admission, error) {
	var adm *Admission
	var overrides []struct {
		tenant string
		b      Budget
	}
	for _, spec := range specs {
		tenant := ""
		body := spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			tenant, body = spec[:i], spec[i+1:]
			if tenant == "" {
				return nil, fmt.Errorf("gateway: -admission %q: empty tenant name", spec)
			}
		}
		b, err := parseBudget(body)
		if err != nil {
			return nil, fmt.Errorf("gateway: -admission %q: %w", spec, err)
		}
		if tenant == "" {
			if adm != nil {
				return nil, fmt.Errorf("gateway: -admission %q: default budget given twice", spec)
			}
			adm = NewAdmission(b)
		} else {
			overrides = append(overrides, struct {
				tenant string
				b      Budget
			}{tenant, b})
		}
	}
	if adm == nil {
		return nil, fmt.Errorf("gateway: -admission needs a default budget spec (rate:burst[:priority])")
	}
	for _, o := range overrides {
		adm.SetBudget(o.tenant, o.b)
	}
	return adm, nil
}

// parseBudget parses "rate:burst[:priority]".
func parseBudget(s string) (Budget, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return Budget{}, fmt.Errorf("want rate:burst[:priority]")
	}
	rate, err := strconv.ParseFloat(parts[0], 64)
	if err != nil || rate < 0 {
		return Budget{}, fmt.Errorf("bad rate %q", parts[0])
	}
	burst, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || burst < 1 {
		return Budget{}, fmt.Errorf("bad burst %q (want >= 1)", parts[1])
	}
	b := Budget{Rate: rate, Burst: burst}
	if len(parts) == 3 {
		p, err := strconv.Atoi(parts[2])
		if err != nil || p < 1 {
			return Budget{}, fmt.Errorf("bad priority %q (want >= 1)", parts[2])
		}
		b.Priority = p
	}
	return b, nil
}
