package gateway

import (
	"fmt"
	"strings"
)

// RouteHint carries the per-request inputs a routing policy may consult.
type RouteHint struct {
	// Node is the shm-affinity hint (the X-BF-Node header): the caller
	// runs on (or its data lives on) this node, so an endpoint whose
	// instance shares the node can use the shared-memory transport
	// instead of crossing the network.
	Node string
}

// Router picks the endpoint that serves a request. Policies are selected
// by name (NewRouter) and must be safe for concurrent use; per-endpoint
// load is read from the gateway's live per-instance counters.
type Router interface {
	// Name identifies the policy ("roundrobin", "least-inflight", ...).
	Name() string
	// Pick returns the chosen endpoint, or nil when none is ready.
	Pick(fs *funcState, hint RouteHint) *epState
}

// Router policy names accepted by NewRouter.
const (
	RouterRoundRobin    = "roundrobin"
	RouterLeastInflight = "least-inflight"
	RouterLocality      = "locality"
	RouterWeighted      = "weighted"
)

// NewRouter builds a routing policy by name. The empty name selects
// round-robin, the paper-faithful default.
func NewRouter(name string) (Router, error) {
	switch name {
	case "", RouterRoundRobin:
		return roundRobinRouter{}, nil
	case RouterLeastInflight:
		return leastInflightRouter{}, nil
	case RouterLocality:
		return localityRouter{}, nil
	case RouterWeighted:
		return weightedRouter{}, nil
	}
	return nil, fmt.Errorf("gateway: unknown router %q (want %s)", name,
		strings.Join([]string{RouterRoundRobin, RouterLeastInflight, RouterLocality, RouterWeighted}, "|"))
}

// roundRobinRouter cycles through ready endpoints in materialization
// order — the paper's gateway behavior and the default policy.
type roundRobinRouter struct{}

func (roundRobinRouter) Name() string                             { return RouterRoundRobin }
func (roundRobinRouter) Pick(fs *funcState, _ RouteHint) *epState { return fs.nextRR() }

// leastInflightRouter picks the endpoint with the fewest requests in
// flight — the live load signal the admission/routing exemplar routes on.
// Ties rotate so idle endpoints still share work evenly.
type leastInflightRouter struct{}

func (leastInflightRouter) Name() string { return RouterLeastInflight }

func (leastInflightRouter) Pick(fs *funcState, _ RouteHint) *epState {
	return pickLeastInflight(fs, fs.endpoints())
}

// pickLeastInflight scans eps starting at a rotating offset and returns
// the lowest-inflight endpoint (the offset spreads ties).
func pickLeastInflight(fs *funcState, eps []*epState) *epState {
	if len(eps) == 0 {
		return nil
	}
	start := int(fs.tie.Add(1)-1) % len(eps)
	if start < 0 {
		start = 0
	}
	best := eps[start]
	bestLoad := best.inflight.Load()
	for k := 1; k < len(eps); k++ {
		es := eps[(start+k)%len(eps)]
		if l := es.inflight.Load(); l < bestLoad {
			best, bestLoad = es, l
		}
	}
	return best
}

// localityRouter prefers endpoints whose instance node matches the
// request's shm-affinity hint (co-located instances reach the board over
// /dev/shm with one copy instead of the network). Among the co-located
// endpoints — or all of them when no hint matches — it falls back to
// least-inflight, so locality never funnels everything onto one hot
// instance.
type localityRouter struct{}

func (localityRouter) Name() string { return RouterLocality }

func (localityRouter) Pick(fs *funcState, hint RouteHint) *epState {
	eps := fs.endpoints()
	if hint.Node != "" {
		local := make([]*epState, 0, len(eps))
		for _, es := range eps {
			if es.node == hint.Node {
				local = append(local, es)
			}
		}
		if len(local) > 0 {
			eps = local
		}
	}
	return pickLeastInflight(fs, eps)
}

// weightedRouter scores endpoints by in-flight load normalized by the
// registry-propagated fair-share weight (BF_TENANT_WEIGHT): an endpoint
// with weight 3 absorbs three times the concurrency of a weight-1 one
// before looking equally loaded. Unweighted endpoints count as weight 1.
type weightedRouter struct{}

func (weightedRouter) Name() string { return RouterWeighted }

func (weightedRouter) Pick(fs *funcState, _ RouteHint) *epState {
	eps := fs.endpoints()
	if len(eps) == 0 {
		return nil
	}
	start := int(fs.tie.Add(1)-1) % len(eps)
	if start < 0 {
		start = 0
	}
	score := func(es *epState) float64 {
		w := es.weight
		if w < 1 {
			w = 1
		}
		return float64(es.inflight.Load()+1) / float64(w)
	}
	best := eps[start]
	bestScore := score(best)
	for k := 1; k < len(eps); k++ {
		es := eps[(start+k)%len(eps)]
		if s := score(es); s < bestScore {
			best, bestScore = es, s
		}
	}
	return best
}
