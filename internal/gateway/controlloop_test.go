package gateway

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"blastfunction/internal/cluster"
)

// TestPanicDoesNotLeakInflight is the panic-leak regression: a panicking
// endpoint must answer 500, count as an error, and return the in-flight
// counters to zero — a leaked count would permanently inflate the
// autoscaler signal and poison least-inflight routing.
func TestPanicDoesNotLeakInflight(t *testing.T) {
	g, _ := startGateway(t)
	g.Deploy("bomb", 1, func(in cluster.Instance) (Endpoint, error) {
		return HandlerEndpoint{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			panic("kernel exploded")
		})}, nil
	})
	waitReplicas(t, g, "bomb", 1)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := srv.Client().Get(srv.URL + "/function/bomb")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking endpoint = %v, want 500", resp.Status)
		}
	}
	st := g.Stats("bomb")
	if st.InFlight != 0 {
		t.Fatalf("in-flight leaked: %+v", st)
	}
	if st.Requests != 3 || st.Errors != 3 {
		t.Fatalf("panic not counted as error: %+v", st)
	}
	for _, es := range g.Debug().Functions[0].Endpoints {
		if es.InFlight != 0 {
			t.Fatalf("endpoint in-flight leaked: %+v", es)
		}
	}
}

// TestPanicAfterHeadersSent: when the endpoint panics after writing, the
// handler must not try to write a second status line.
func TestPanicAfterHeadersSent(t *testing.T) {
	g, _ := startGateway(t)
	g.Deploy("half", 1, func(in cluster.Instance) (Endpoint, error) {
		return HandlerEndpoint{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusAccepted)
			panic("after headers")
		})}, nil
	})
	waitReplicas(t, g, "half", 1)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/function/half")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %v, want the already-sent 202", resp.Status)
	}
	if st := g.Stats("half"); st.InFlight != 0 || st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestConcurrentScaleConverges is the Scale-race regression: concurrent
// Scale calls used to race on cl.Instances and pad with empty
// placeholders, over- or under-shooting the replica count.
func TestConcurrentScaleConverges(t *testing.T) {
	g, cl := startGateway(t)
	if err := g.Deploy("svc", 1, echoFactory(nil)); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, g, "svc", 1)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		n := 1 + i%5
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Scale("svc", n); err != nil {
				t.Errorf("scale(%d): %v", n, err)
			}
		}()
	}
	wg.Wait()
	// Serialized scaling means the last completed call fully reconciled;
	// a final call must land exactly on its target.
	if err := g.Scale("svc", 2); err != nil {
		t.Fatal(err)
	}
	if got := len(cl.Instances("svc")); got != 2 {
		t.Fatalf("cluster instances = %d, want exactly 2", got)
	}
	waitReplicas(t, g, "svc", 2)
}

// TestConcurrentScaleAndAutoscale runs admin Scale calls against a live
// autoscaler under the race detector.
func TestConcurrentScaleAndAutoscale(t *testing.T) {
	g, cl := startGateway(t)
	if err := g.Deploy("svc", 1, echoFactory(nil)); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, g, "svc", 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		g.Autoscale(ctx, AutoscaleConfig{Function: "svc", Min: 1, Max: 4,
			TargetInFlight: 1, Interval: 5 * time.Millisecond})
		close(done)
	}()
	for i := 0; i < 30; i++ {
		if err := g.Scale("svc", 1+i%4); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	if got := len(cl.Instances("svc")); got < 1 || got > 4 {
		t.Fatalf("cluster instances = %d, want within [1,4]", got)
	}
}

// TestAutoscalerUsesClusterCount is the signal-mismatch regression: with 3
// cluster instances but only 1 materialized endpoint, the old scaler
// divided in-flight by the materialized count and kept issuing Scale
// calls computed from the wrong base, shrinking the cluster under load.
func TestAutoscalerUsesClusterCount(t *testing.T) {
	g, cl := startGateway(t)
	block := make(chan struct{})
	var mu sync.Mutex
	materialized := 0
	g.Deploy("slow", 1, func(in cluster.Instance) (Endpoint, error) {
		mu.Lock()
		defer mu.Unlock()
		if materialized >= 1 {
			// Later instances never materialize (a Device Manager that is
			// slow to come up); retries are pushed past the test horizon.
			return nil, context.DeadlineExceeded
		}
		materialized++
		return HandlerEndpoint{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			<-block
		})}, nil
	})
	g.RetryDelay = time.Hour
	waitReplicas(t, g, "slow", 1)
	if err := g.Scale("slow", 3); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	defer close(block) // unpark requests before srv.Close waits on them
	for i := 0; i < 6; i++ {
		go srv.Client().Get(srv.URL + "/function/slow")
	}
	deadline := time.Now().Add(time.Second)
	for g.Stats("slow").InFlight < 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go g.Autoscale(ctx, AutoscaleConfig{Function: "slow", Min: 1, Max: 3,
		TargetInFlight: 1, Interval: 5 * time.Millisecond})

	// The cluster already holds Max instances; a scaler reading the
	// cluster count holds steady. The old one read Replicas=1, decided
	// want=2, and deleted an instance.
	time.Sleep(150 * time.Millisecond)
	if got := len(cl.Instances("slow")); got != 3 {
		t.Fatalf("cluster instances = %d, want 3 held under load", got)
	}
}

// TestScaleOutCooldown: consecutive scale-outs must be spaced by the
// cooldown even when the pressure persists.
func TestScaleOutCooldown(t *testing.T) {
	g, cl := startGateway(t)
	block := make(chan struct{})
	g.Deploy("burst", 1, func(in cluster.Instance) (Endpoint, error) {
		return HandlerEndpoint{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			<-block
		})}, nil
	})
	waitReplicas(t, g, "burst", 1)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	defer close(block) // unpark requests before srv.Close waits on them
	for i := 0; i < 8; i++ {
		go srv.Client().Get(srv.URL + "/function/burst")
	}
	deadline := time.Now().Add(time.Second)
	for g.Stats("burst").InFlight < 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go g.Autoscale(ctx, AutoscaleConfig{Function: "burst", Min: 1, Max: 8,
		TargetInFlight: 1, Interval: 5 * time.Millisecond,
		ScaleOutCooldown: 300 * time.Millisecond})

	// Within one cooldown window only a single scale-out may fire, even
	// though 8 parked requests scream for more.
	time.Sleep(150 * time.Millisecond)
	if got := len(cl.Instances("burst")); got > 2 {
		t.Fatalf("cluster instances = %d within cooldown, want <= 2", got)
	}
}
