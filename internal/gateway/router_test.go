package gateway

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// makeFuncState builds a funcState with synthetic endpoints for direct
// router tests: specs are (uid, node, weight, inflight).
func makeFuncState(specs ...[4]interface{}) *funcState {
	fs := &funcState{eps: make(map[string]*epState)}
	for _, s := range specs {
		es := &epState{uid: s[0].(string), node: s[1].(string), weight: s[2].(int)}
		es.inflight.Store(int64(s[3].(int)))
		fs.eps[es.uid] = es
		fs.order = append(fs.order, es.uid)
	}
	return fs
}

func TestNewRouterNames(t *testing.T) {
	for _, name := range []string{"", RouterRoundRobin, RouterLeastInflight, RouterLocality, RouterWeighted} {
		r, err := NewRouter(name)
		if err != nil {
			t.Fatalf("NewRouter(%q): %v", name, err)
		}
		if name != "" && r.Name() != name {
			t.Fatalf("NewRouter(%q).Name() = %q", name, r.Name())
		}
	}
	if _, err := NewRouter("bogus"); err == nil {
		t.Fatal("unknown router must fail")
	}
}

func TestLeastInflightPicksIdlest(t *testing.T) {
	fs := makeFuncState(
		[4]interface{}{"a", "n1", 0, 5},
		[4]interface{}{"b", "n1", 0, 1},
		[4]interface{}{"c", "n2", 0, 3},
	)
	r, _ := NewRouter(RouterLeastInflight)
	for i := 0; i < 4; i++ {
		if es := r.Pick(fs, RouteHint{}); es.uid != "b" {
			t.Fatalf("pick %d = %q, want b (lowest inflight)", i, es.uid)
		}
	}
	// Ties rotate: with everyone equal, repeated picks spread.
	for _, es := range fs.endpoints() {
		es.inflight.Store(0)
	}
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		seen[r.Pick(fs, RouteHint{}).uid]++
	}
	if len(seen) != 3 {
		t.Fatalf("tied endpoints not rotated: %v", seen)
	}
}

func TestLocalityPrefersHintedNode(t *testing.T) {
	fs := makeFuncState(
		[4]interface{}{"a", "n1", 0, 0},
		[4]interface{}{"b", "n2", 0, 9},
		[4]interface{}{"c", "n2", 0, 2},
	)
	r, _ := NewRouter(RouterLocality)
	// Hinted node wins even when busier overall; among co-located
	// endpoints the idler one is picked.
	if es := r.Pick(fs, RouteHint{Node: "n2"}); es.uid != "c" {
		t.Fatalf("locality pick = %q, want c", es.uid)
	}
	// No matching node: falls back to global least-inflight.
	if es := r.Pick(fs, RouteHint{Node: "n9"}); es.uid != "a" {
		t.Fatalf("fallback pick = %q, want a", es.uid)
	}
	if es := r.Pick(fs, RouteHint{}); es.uid != "a" {
		t.Fatalf("unhinted pick = %q, want a", es.uid)
	}
}

func TestWeightedAbsorbsProportionalLoad(t *testing.T) {
	fs := makeFuncState(
		[4]interface{}{"light", "n1", 1, 1},
		[4]interface{}{"heavy", "n1", 3, 2},
	)
	r, _ := NewRouter(RouterWeighted)
	// (2+1)/3 = 1.0 < (1+1)/1 = 2.0: the weight-3 endpoint still looks
	// less loaded despite more in-flight requests.
	if es := r.Pick(fs, RouteHint{}); es.uid != "heavy" {
		t.Fatalf("weighted pick = %q, want heavy", es.uid)
	}
	fs.eps["heavy"].inflight.Store(8)
	// (8+1)/3 = 3.0 > 2.0: now the light endpoint wins.
	if es := r.Pick(fs, RouteHint{}); es.uid != "light" {
		t.Fatalf("weighted pick = %q, want light", es.uid)
	}
}

// TestRoundRobinCursorSurvivesRemoval is the rotation regression: with the
// old modulo counter, removing an endpoint behind the cursor skipped the
// next endpoint and re-served an already-served one before the cycle
// completed.
func TestRoundRobinCursorSurvivesRemoval(t *testing.T) {
	g, cl := startGateway(t)
	if err := g.Deploy("rr", 4, echoFactory(nil)); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, g, "rr", 4)

	g.mu.Lock()
	fs := g.funcs["rr"]
	g.mu.Unlock()
	fs.mu.Lock()
	order := append([]string(nil), fs.order...)
	fs.mu.Unlock()

	// Serve the first two endpoints of the cycle.
	if got := fs.nextRR().uid; got != order[0] {
		t.Fatalf("pick 1 = %s, want %s", got, order[0])
	}
	if got := fs.nextRR().uid; got != order[1] {
		t.Fatalf("pick 2 = %s, want %s", got, order[1])
	}

	// Remove the already-served head mid-cycle.
	if err := cl.DeleteInstance(order[0]); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, g, "rr", 3)

	// The not-yet-served endpoints must complete the cycle before anyone
	// repeats: order[2], order[3], and only then back to order[1].
	for i, want := range []string{order[2], order[3], order[1]} {
		if got := fs.nextRR().uid; got != want {
			t.Fatalf("post-removal pick %d = %s, want %s", i, got, want)
		}
	}
}

// TestRoundRobinUnderChurn hammers the rotation while replicas come and
// go; every request must land on some live endpoint (no nil picks, no
// errors) with the race detector watching the cursor.
func TestRoundRobinUnderChurn(t *testing.T) {
	g, _ := startGateway(t)
	if err := g.Deploy("churn", 2, echoFactory(nil)); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, g, "churn", 2)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{4, 1, 3, 2, 5, 1, 2}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := g.Scale("churn", sizes[i%len(sizes)]); err != nil {
				t.Errorf("scale: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				resp, err := srv.Client().Get(srv.URL + "/function/churn")
				if err != nil {
					t.Errorf("request: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("status %d during churn", resp.StatusCode)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if st := g.Stats("churn"); st.Errors != 0 {
		t.Fatalf("errors under churn: %+v", st)
	}
}
