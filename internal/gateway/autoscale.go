package gateway

import (
	"context"
	"time"
)

// AutoscaleConfig bounds an autoscaler loop for one function.
type AutoscaleConfig struct {
	// Function is the deployed function to scale.
	Function string
	// Min and Max bound the replica count (OpenFaaS-style).
	Min, Max int
	// TargetInFlight is the per-replica concurrency the scaler aims for:
	// above it, scale out; at less than half of it, scale in.
	TargetInFlight float64
	// Interval is the evaluation period; default one second.
	Interval time.Duration
}

// Autoscale runs an OpenFaaS-style autoscaler until ctx is cancelled: it
// samples the gateway's in-flight count for the function each interval and
// adjusts replicas within [Min, Max]. This is the paper's "Gateway ...
// handles autoscaling" integration point; the Registry then places every
// new replica through the allocation algorithm like any other instance.
func (g *Gateway) Autoscale(ctx context.Context, cfg AutoscaleConfig) error {
	if cfg.Min < 1 {
		cfg.Min = 1
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.TargetInFlight <= 0 {
		cfg.TargetInFlight = 1
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	// Enforce the floor immediately.
	if st := g.Stats(cfg.Function); st.Replicas < cfg.Min {
		if err := g.Scale(cfg.Function, cfg.Min); err != nil {
			return err
		}
	}
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			st := g.Stats(cfg.Function)
			if st.Replicas == 0 {
				continue // not materialized yet
			}
			perReplica := float64(st.InFlight) / float64(st.Replicas)
			want := st.Replicas
			switch {
			case perReplica > cfg.TargetInFlight:
				want = st.Replicas + 1
			case perReplica < cfg.TargetInFlight/2:
				want = st.Replicas - 1
			}
			if want < cfg.Min {
				want = cfg.Min
			}
			if want > cfg.Max {
				want = cfg.Max
			}
			if want != st.Replicas {
				if err := g.Scale(cfg.Function, want); err != nil {
					return err
				}
			}
		}
	}
}
