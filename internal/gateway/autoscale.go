package gateway

import (
	"context"
	"time"
)

// AutoscaleConfig bounds an autoscaler loop for one function.
type AutoscaleConfig struct {
	// Function is the deployed function to scale.
	Function string
	// Min and Max bound the replica count (OpenFaaS-style).
	Min, Max int
	// TargetInFlight is the per-replica concurrency the scaler aims for:
	// above it, scale out; at less than half of it, scale in.
	TargetInFlight float64
	// Interval is the evaluation period; default one second.
	Interval time.Duration
	// ScaleOutCooldown suppresses further scale-outs for this long after
	// one fires, giving the new instance time to materialize before its
	// load contribution is judged; default 3×Interval.
	ScaleOutCooldown time.Duration
}

// Autoscale runs an OpenFaaS-style autoscaler until ctx is cancelled: it
// samples the gateway's in-flight count for the function each interval and
// adjusts replicas within [Min, Max]. This is the paper's "Gateway ...
// handles autoscaling" integration point; the Registry then places every
// new replica through the allocation algorithm like any other instance.
//
// The replica count it divides by and scales from is the cluster's live
// instance count — the same ground truth Scale reconciles against — not
// the materialized-endpoint count, which lags while factories start and
// would otherwise make the scaler keep creating instances it has already
// created.
func (g *Gateway) Autoscale(ctx context.Context, cfg AutoscaleConfig) error {
	if cfg.Min < 1 {
		cfg.Min = 1
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.TargetInFlight <= 0 {
		cfg.TargetInFlight = 1
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.ScaleOutCooldown <= 0 {
		cfg.ScaleOutCooldown = 3 * cfg.Interval
	}
	// Enforce the floor immediately.
	if n := g.ClusterReplicas(cfg.Function); n < cfg.Min {
		if err := g.Scale(cfg.Function, cfg.Min); err != nil {
			return err
		}
	}
	var lastScaleOut time.Time
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			n := g.ClusterReplicas(cfg.Function)
			if n == 0 {
				continue // not deployed yet
			}
			st := g.Stats(cfg.Function)
			perReplica := float64(st.InFlight) / float64(n)
			want := n
			switch {
			case perReplica > cfg.TargetInFlight:
				if time.Since(lastScaleOut) < cfg.ScaleOutCooldown {
					continue // let the previous scale-out materialize first
				}
				want = n + 1
			case perReplica < cfg.TargetInFlight/2:
				want = n - 1
			}
			if want < cfg.Min {
				want = cfg.Min
			}
			if want > cfg.Max {
				want = cfg.Max
			}
			if want != n {
				if err := g.Scale(cfg.Function, want); err != nil {
					return err
				}
				if want > n {
					lastScaleOut = time.Now()
				}
			}
		}
	}
}
