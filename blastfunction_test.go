package blastfunction

import (
	"testing"

	"blastfunction/internal/accel"
	"blastfunction/internal/apps"
	"blastfunction/internal/model"
	"blastfunction/internal/remote"
)

func TestTestbedLifecycle(t *testing.T) {
	tb, err := NewTestbed(
		NodeConfig{Name: "A", Master: true},
		NodeConfig{Name: "B"},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if len(tb.Nodes) != 2 || len(tb.Addrs()) != 2 {
		t.Fatalf("nodes = %d", len(tb.Nodes))
	}
	if tb.Nodes[0].Board.Cost().PCIeGBps >= tb.Nodes[1].Board.Cost().PCIeGBps {
		t.Fatal("master node must have the slower PCIe link")
	}
	if _, err := NewTestbed(); err == nil {
		t.Fatal("empty testbed must fail")
	}
}

func TestTestbedClientSelection(t *testing.T) {
	tb, err := NewTestbed(NodeConfig{Name: "A"}, NodeConfig{Name: "B"})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	all, err := tb.Client("everything")
	if err != nil {
		t.Fatal(err)
	}
	defer all.Close()
	platforms, err := all.Platforms()
	if err != nil {
		t.Fatal(err)
	}
	devs, err := platforms[0].Devices(0xFFFFFFFF)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 2 {
		t.Fatalf("devices = %d, want 2", len(devs))
	}

	one, err := tb.Client("only-b", "B")
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	platforms, _ = one.Platforms()
	devs, _ = platforms[0].Devices(0xFFFFFFFF)
	if len(devs) != 1 {
		t.Fatalf("devices = %d, want 1", len(devs))
	}

	if _, err := tb.Client("nope", "Z"); err == nil {
		t.Fatal("unknown node must fail")
	}
}

func TestTestbedEndToEnd(t *testing.T) {
	tb, err := NewTestbed(NodeConfig{Name: "X"})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	client, err := tb.Client("e2e")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	app, err := apps.NewMM(client, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	a := apps.RandomMatrix(8, 1)
	bm := apps.RandomMatrix(8, 2)
	out, err := app.Multiply(a, bm, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 64 {
		t.Fatalf("result = %d elements", len(out))
	}
	if tb.Nodes[0].Board.ConfiguredID() != accel.MMBitstreamID {
		t.Fatalf("board configured with %q", tb.Nodes[0].Board.ConfiguredID())
	}
}

func TestTestbedTransportNegotiation(t *testing.T) {
	tb, err := NewTestbed(NodeConfig{Name: "S"})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	client, err := tb.Client("shm-check")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// In-process testbed: co-location holds, so auto selects shm.
	if got := client.Transport(0); got != model.TransportShm {
		t.Fatalf("transport = %v, want shm", got)
	}
	forced, err := remote.Dial(remote.Config{
		ClientName: "grpc-check",
		Managers:   []string{tb.Nodes[0].Addr},
		Transport:  remote.TransportGRPC,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer forced.Close()
	if got := forced.Transport(0); got != model.TransportGRPC {
		t.Fatalf("forced transport = %v", got)
	}
}
