# BlastFunction reproduction build targets.
GO ?= go

.PHONY: all build test race bench check experiments examples clean

all: build test

build:
	$(GO) build ./...

test: race
	$(GO) test ./...

# The transport hot path carries explicit buffer-ownership hand-offs and the
# close/notify teardown races; always run it under the race detector.
race:
	$(GO) test -race ./internal/rpc/... ./internal/manager/... ./internal/remote/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Verify the paper's qualitative claims hold.
check:
	$(GO) run ./cmd/blastbench -check

# Regenerate every figure and table of the paper.
experiments:
	$(GO) run ./cmd/blastbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/matrixservice
	$(GO) run ./examples/cnninference
	$(GO) run ./examples/imagepipeline

clean:
	$(GO) clean ./...
