# BlastFunction reproduction build targets.
GO ?= go

.PHONY: all build test vet race bench bench-dataplane bench-scale bench-reconfig bench-obs trace-overhead log-overhead check experiments examples sched-ablation clean

all: build test

build:
	$(GO) build ./...

test: vet race
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The transport hot path carries explicit buffer-ownership hand-offs and the
# close/notify teardown races, simcluster hosts the chaos tests (fault
# injection, lease expiry), sched is the manager's concurrent central
# queue, obs records spans from every hot-path goroutine at once, logx
# rings are written from every component concurrently, and the alert
# engine evaluates while scrape goroutines append; always run them under
# the race detector. datacache is the shared buffer/memo cache hit from
# every session's RPC goroutine, and fpga carries the board counters and
# device-to-device copy path those caches drive. gateway serves requests,
# scales replicas and autoscales concurrently over shared per-endpoint
# counters and the round-robin cursor. flash serializes reprogram jobs
# through per-board workers while Submit coalesces followers onto open
# windows, and registry's allocator races the reconfiguration fallback
# against concurrent Allocates on the same blank boards. slo computes
# burn rates from a TSDB that scrape goroutines append to concurrently.
race:
	$(GO) test -race ./internal/rpc/... ./internal/manager/... ./internal/remote/... ./internal/sched/... ./internal/simcluster/... ./internal/obs/... ./internal/logx/... ./internal/alert/... ./internal/datacache/... ./internal/fpga/... ./internal/gateway/... ./internal/flash/... ./internal/registry/... ./internal/slo/... ./internal/flightrec/...

# Run the scheduling fairness experiment: the two-tenant skew workload on
# the real Device Manager under fifo vs drr, checked against the
# discrete-event ablation's prediction, plus the queue microbenchmarks.
sched-ablation:
	$(GO) test -race -v ./internal/simcluster/ -run Fairness
	$(GO) test -bench BenchmarkPushPop -benchmem ./internal/sched/

bench: trace-overhead log-overhead bench-reconfig
	$(GO) test -bench=. -benchmem ./...

# Record the data-plane reuse trajectory into BENCH_dataplane.json:
# bytes-moved/op and us/op for the repeated-input (CNN weights) and
# chained-pipeline workloads, content cache on vs off, next to the
# transport round-trip baselines.
bench-dataplane:
	BF_BENCH_DATAPLANE=1 $(GO) test -run TestBenchDataplaneArtifact -count=1 -v .

# Record the cluster-scale front-door trajectory into BENCH_scale.json:
# p50/p99 and rejection rate at 100 boards / 500 tenants past saturation,
# bare round-robin vs admission + least-inflight, plus the placement
# pass's Gatherer query cost.
bench-scale:
	BF_BENCH_SCALE=1 $(GO) test -run TestBenchScaleArtifact -count=1 -v .

# Record the reconfiguration-storm trajectory into BENCH_reconfig.json:
# p50/p99 and total reconfiguration seconds under serverless churn, naive
# per-allocation flipping vs the lifecycle service's batched flash
# windows.
bench-reconfig:
	BF_BENCH_RECONFIG=1 $(GO) test -run TestBenchReconfigArtifact -count=1 -v .

# Record the observability tax into BENCH_obs.json: the three histogram
# observation paths (plain, unsampled exemplar, sampled exemplar), the
# runtime collector's sampling cost, the scrape render with exemplars
# on vs off, and the always-on flight recorder's per-task cost against
# the live 4K round trip. Two gates fail the run on regression: the
# unsampled exemplar path — what every request pays at default
# sampling — must stay within 2% of a plain Observe, and the flight
# recorder's per-task work must stay within 2% of the recorder-free
# round trip.
bench-obs:
	BF_BENCH_OBS=1 $(GO) test -run TestBenchObsArtifact -count=1 -v .

# Measure the distributed-tracing tax on the hot RPC path: the 4K gRPC
# round trip with tracing off, sampling 1% and sampling 100%, next to the
# untouched baseline benchmark. The sampling-off budget is <2%.
trace-overhead:
	$(GO) test -run '^$$' -bench 'BenchmarkTraceOverhead|BenchmarkLiveRoundTripGRPC4K$$' -benchmem .

# Measure the structured-logging tax on the same round trip: nil loggers
# (budget <1% against the untouched baseline), loggers at Info (per-task
# debug events gated out), and ring-recording every task at Debug.
log-overhead:
	$(GO) test -run '^$$' -bench 'BenchmarkLogOverhead|BenchmarkLiveRoundTripGRPC4K$$' -benchmem .

# Verify the paper's qualitative claims hold.
check:
	$(GO) run ./cmd/blastbench -check

# Regenerate every figure and table of the paper.
experiments:
	$(GO) run ./cmd/blastbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/matrixservice
	$(GO) run ./examples/cnninference
	$(GO) run ./examples/imagepipeline

clean:
	$(GO) clean ./...
