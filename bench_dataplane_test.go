package blastfunction

// Data-plane reuse trajectory: bytes-moved/op and us/op for the
// repeated-input (CNN weights) and chained-pipeline workloads, cache on
// vs off, next to the transport round-trip baselines. `make
// bench-dataplane` runs this and writes BENCH_dataplane.json at the repo
// root so the numbers accumulate across revisions.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/ocl"
	"blastfunction/internal/remote"
)

// dataplaneSample is one measured workload variant.
type dataplaneSample struct {
	BytesMovedPerOp int64   `json:"bytes_moved_per_op"`
	UsPerOp         float64 `json:"us_per_op"`
	Invocations     int     `json:"invocations"`
}

// dataplaneReport is the BENCH_dataplane.json schema.
type dataplaneReport struct {
	GeneratedBy string `json:"generated_by"`

	RepeatedInput struct {
		PayloadBytes      int64           `json:"payload_bytes"`
		CacheOff          dataplaneSample `json:"cache_off"`
		CacheOn           dataplaneSample `json:"cache_on"`
		FirstUploadBytes  int64           `json:"cache_on_first_upload_bytes"`
		BytesReductionPct float64         `json:"bytes_reduction_pct"`
		CacheHits         uint64          `json:"cache_hits"`
		CacheMisses       uint64          `json:"cache_misses"`
	} `json:"repeated_input_weights"`

	ChainedPipeline struct {
		PayloadBytes            int64           `json:"payload_bytes"`
		Stages                  int             `json:"stages"`
		ClientHop               dataplaneSample `json:"client_hop"`
		DeviceCopy              dataplaneSample `json:"device_copy"`
		IntermediateClientBytes int64           `json:"device_copy_intermediate_client_bytes"`
		DeviceCopyOps           int64           `json:"device_copy_ops"`
	} `json:"chained_pipeline"`

	TransportBaselines map[string]dataplaneSample `json:"transport_baselines"`
}

// dialNode connects a client to the testbed node with the content cache
// on or off.
func dialNode(t *testing.T, tb *Testbed, name string, disableCache bool) *remote.Client {
	t.Helper()
	c, err := remote.Dial(remote.Config{
		ClientName:          name,
		Managers:            []string{tb.Nodes[0].Addr},
		Transport:           remote.TransportGRPC,
		DisableContentCache: disableCache,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func openQueue(t *testing.T, c ocl.Client) (ocl.Context, ocl.Device, ocl.CommandQueue) {
	t.Helper()
	ps, err := c.Platforms()
	if err != nil {
		t.Fatal(err)
	}
	devs, err := ps[0].Devices(ocl.DeviceTypeAccelerator)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := c.CreateContext(devs[:1])
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateCommandQueue(devs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, devs[0], q
}

func buildKernel(t *testing.T, ctx ocl.Context, dev ocl.Device, binary []byte, name string) ocl.Kernel {
	t.Helper()
	prog, err := ctx.CreateProgramWithBinary(dev, binary)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// cnnWeights builds a deterministic model-weights payload.
func cnnWeights(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*2654435761 + 0x9e)
	}
	return p
}

// repeatedInputWorkload runs invocations of a CNN-style inference: create
// the (identical) weights buffer, run the kernel against a fresh output,
// read the result, release. Returns bytes moved client->board per steady
// invocation (2nd and later) and us per invocation.
func repeatedInputWorkload(t *testing.T, tb *Testbed, k ocl.Kernel, ctx ocl.Context, q ocl.CommandQueue, payload []byte, invocations int) (sample dataplaneSample, firstBytes int64) {
	t.Helper()
	board := tb.Nodes[0].Board
	size := len(payload)
	var steadyBytes int64
	start := time.Now()
	for i := 0; i < invocations; i++ {
		before := board.Stats().BytesIn
		in, err := ctx.CreateBuffer(ocl.MemReadOnly, size, payload)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ctx.CreateBuffer(ocl.MemWriteOnly, size, nil)
		if err != nil {
			t.Fatal(err)
		}
		k.SetArg(0, in)
		k.SetArg(1, out)
		k.SetArg(2, int32(size))
		if _, err := q.EnqueueTask(k, nil); err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, size)
		if _, err := q.EnqueueReadBuffer(out, true, 0, dst, nil); err != nil {
			t.Fatal(err)
		}
		in.Release()
		out.Release()
		moved := board.Stats().BytesIn - before
		if i == 0 {
			firstBytes = moved
		} else {
			steadyBytes += moved
		}
	}
	elapsed := time.Since(start)
	sample = dataplaneSample{
		BytesMovedPerOp: steadyBytes / int64(invocations-1),
		UsPerOp:         float64(elapsed.Microseconds()) / float64(invocations),
		Invocations:     invocations,
	}
	return sample, firstBytes
}

// chainedPipelineWorkload runs a two-stage kernel pipeline with the
// intermediate moved either through the client (read + rewrite) or by a
// device-to-device copy. Returns the client bytes moved for the
// intermediate hop and us per pipeline run.
func chainedPipelineWorkload(t *testing.T, tb *Testbed, k ocl.Kernel, ctx ocl.Context, q ocl.CommandQueue, payload []byte, runs int, deviceCopy bool) (dataplaneSample, int64) {
	t.Helper()
	board := tb.Nodes[0].Board
	size := len(payload)
	in, _ := ctx.CreateBuffer(ocl.MemReadWrite, size, nil)
	mid, _ := ctx.CreateBuffer(ocl.MemReadWrite, size, nil)
	mid2, _ := ctx.CreateBuffer(ocl.MemReadWrite, size, nil)
	out, _ := ctx.CreateBuffer(ocl.MemWriteOnly, size, nil)
	defer in.Release()
	defer mid.Release()
	defer mid2.Release()
	defer out.Release()

	var interBytes int64
	dst := make([]byte, size)
	hop := make([]byte, size)
	start := time.Now()
	for i := 0; i < runs; i++ {
		beforeIn, beforeOut := board.Stats().BytesIn, board.Stats().BytesOut
		if _, err := q.EnqueueWriteBuffer(in, false, 0, payload, nil); err != nil {
			t.Fatal(err)
		}
		k.SetArg(0, in)
		k.SetArg(1, mid)
		k.SetArg(2, int32(size))
		if _, err := q.EnqueueTask(k, nil); err != nil {
			t.Fatal(err)
		}
		if deviceCopy {
			if _, err := q.EnqueueCopyBuffer(mid, mid2, 0, 0, size, nil); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := q.EnqueueReadBuffer(mid, true, 0, hop, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := q.EnqueueWriteBuffer(mid2, false, 0, hop, nil); err != nil {
				t.Fatal(err)
			}
		}
		k.SetArg(0, mid2)
		k.SetArg(1, out)
		k.SetArg(2, int32(size))
		if _, err := q.EnqueueTask(k, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueReadBuffer(out, false, 0, dst, nil); err != nil {
			t.Fatal(err)
		}
		if err := q.Finish(); err != nil {
			t.Fatal(err)
		}
		st := board.Stats()
		// Subtract the pipeline's own input write and output read; what
		// remains crossing the client boundary is the intermediate hop.
		interBytes += (st.BytesIn - beforeIn - int64(size)) + (st.BytesOut - beforeOut - int64(size))
	}
	elapsed := time.Since(start)
	return dataplaneSample{
		BytesMovedPerOp: interBytes / int64(runs),
		UsPerOp:         float64(elapsed.Microseconds()) / float64(runs),
		Invocations:     runs,
	}, interBytes / int64(runs)
}

// transportBaseline is the PR-1 style write -> kernel -> read round trip,
// measured with a plain loop so it lands in the same artifact.
func transportBaseline(t *testing.T, tb *Testbed, mode remote.TransportMode, size, runs int) dataplaneSample {
	t.Helper()
	c, err := remote.Dial(remote.Config{
		ClientName: "dp-baseline",
		Managers:   []string{tb.Nodes[0].Addr},
		Transport:  mode,
		ShmDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, dev, q := openQueue(t, c)
	k := buildKernel(t, ctx, dev, accel.LoopbackBitstream().Binary(), "copy")
	in, _ := ctx.CreateBuffer(ocl.MemReadOnly, size, nil)
	out, _ := ctx.CreateBuffer(ocl.MemWriteOnly, size, nil)
	k.SetArg(0, in)
	k.SetArg(1, out)
	k.SetArg(2, int32(size))
	payload := cnnWeights(size)
	dst := make([]byte, size)
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := q.EnqueueWriteBuffer(in, false, 0, payload, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueTask(k, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueReadBuffer(out, false, 0, dst, nil); err != nil {
			t.Fatal(err)
		}
		if err := q.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	return dataplaneSample{
		BytesMovedPerOp: int64(2 * size),
		UsPerOp:         float64(elapsed.Microseconds()) / float64(runs),
		Invocations:     runs,
	}
}

// TestBenchDataplaneArtifact measures the reuse layer and writes
// BENCH_dataplane.json. Gated behind BF_BENCH_DATAPLANE so `go test ./...`
// stays fast; `make bench-dataplane` sets the variable.
func TestBenchDataplaneArtifact(t *testing.T) {
	if os.Getenv("BF_BENCH_DATAPLANE") == "" {
		t.Skip("set BF_BENCH_DATAPLANE=1 (or run `make bench-dataplane`) to record the artifact")
	}
	var rep dataplaneReport
	rep.GeneratedBy = "make bench-dataplane"

	const weightBytes = 4 << 20 // AlexNet-scale conv layer weights
	const invocations = 10
	payload := cnnWeights(weightBytes)

	// Repeated-input workload, cache off: every invocation re-uploads the
	// weights.
	{
		tb, err := NewTestbed(NodeConfig{Name: "dp-off"})
		if err != nil {
			t.Fatal(err)
		}
		c := dialNode(t, tb, "dp-off", true)
		ctx, dev, q := openQueue(t, c)
		k := buildKernel(t, ctx, dev, accel.LoopbackBitstream().Binary(), "copy")
		sample, _ := repeatedInputWorkload(t, tb, k, ctx, q, payload, invocations)
		rep.RepeatedInput.CacheOff = sample
		tb.Close()
	}
	// Cache on: the first invocation uploads, steady state is
	// metadata-only.
	{
		tb, err := NewTestbed(NodeConfig{Name: "dp-on"})
		if err != nil {
			t.Fatal(err)
		}
		c := dialNode(t, tb, "dp-on", false)
		ctx, dev, q := openQueue(t, c)
		k := buildKernel(t, ctx, dev, accel.LoopbackBitstream().Binary(), "copy")
		sample, first := repeatedInputWorkload(t, tb, k, ctx, q, payload, invocations)
		rep.RepeatedInput.PayloadBytes = weightBytes
		rep.RepeatedInput.CacheOn = sample
		rep.RepeatedInput.FirstUploadBytes = first
		st := tb.Nodes[0].Manager.CacheStats().BufferCache
		rep.RepeatedInput.CacheHits = st.Hits
		rep.RepeatedInput.CacheMisses = st.Misses
		tb.Close()
	}
	off, on := rep.RepeatedInput.CacheOff.BytesMovedPerOp, rep.RepeatedInput.CacheOn.BytesMovedPerOp
	rep.RepeatedInput.BytesReductionPct = 100 * float64(off-on) / float64(off)
	if rep.RepeatedInput.BytesReductionPct < 90 {
		t.Errorf("repeated-input bytes reduction = %.1f%%, want >= 90%%",
			rep.RepeatedInput.BytesReductionPct)
	}

	// Chained pipeline: intermediate through the client vs on-device copy.
	const chainBytes = 1 << 20
	const chainRuns = 10
	chainPayload := cnnWeights(chainBytes)
	{
		tb, err := NewTestbed(NodeConfig{Name: "dp-chain"})
		if err != nil {
			t.Fatal(err)
		}
		c := dialNode(t, tb, "dp-chain", true)
		ctx, dev, q := openQueue(t, c)
		k := buildKernel(t, ctx, dev, accel.LoopbackBitstream().Binary(), "copy")
		hop, _ := chainedPipelineWorkload(t, tb, k, ctx, q, chainPayload, chainRuns, false)
		dev2, inter := chainedPipelineWorkload(t, tb, k, ctx, q, chainPayload, chainRuns, true)
		rep.ChainedPipeline.PayloadBytes = chainBytes
		rep.ChainedPipeline.Stages = 2
		rep.ChainedPipeline.ClientHop = hop
		rep.ChainedPipeline.DeviceCopy = dev2
		rep.ChainedPipeline.IntermediateClientBytes = inter
		rep.ChainedPipeline.DeviceCopyOps = tb.Nodes[0].Board.Stats().CopyOps
		tb.Close()
	}
	if rep.ChainedPipeline.IntermediateClientBytes != 0 {
		t.Errorf("device-copy pipeline moved %d intermediate bytes through the client, want 0",
			rep.ChainedPipeline.IntermediateClientBytes)
	}
	if rep.ChainedPipeline.DeviceCopyOps == 0 {
		t.Error("device-copy pipeline recorded no on-device copies")
	}

	// Transport baselines for context (the PR-1 trajectory).
	rep.TransportBaselines = map[string]dataplaneSample{}
	{
		tb, err := NewTestbed(NodeConfig{Name: "dp-base"})
		if err != nil {
			t.Fatal(err)
		}
		rep.TransportBaselines["grpc_roundtrip_4k"] = transportBaseline(t, tb, remote.TransportGRPC, 4<<10, 50)
		rep.TransportBaselines["grpc_roundtrip_1m"] = transportBaseline(t, tb, remote.TransportGRPC, 1<<20, 20)
		rep.TransportBaselines["shm_roundtrip_1m"] = transportBaseline(t, tb, remote.TransportShm, 1<<20, 20)
		tb.Close()
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile("BENCH_dataplane.json", out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_dataplane.json:\n%s", out)
}
