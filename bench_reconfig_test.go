package blastfunction

// Reconfiguration-storm trajectory: serverless churn across eight
// accelerator families on eight boards, naive per-allocation flipping vs
// the lifecycle service's batched flash windows. `make bench-reconfig`
// runs this and writes BENCH_reconfig.json at the repo root so the
// numbers accumulate across revisions.

import (
	"encoding/json"
	"os"
	"testing"

	"blastfunction/internal/simcluster"
)

// reconfigReport is the BENCH_reconfig.json schema.
type reconfigReport struct {
	GeneratedBy string `json:"generated_by"`

	Naive   *simcluster.ReconfigResult `json:"naive_per_allocation"`
	Batched *simcluster.ReconfigResult `json:"batched_flash_windows"`

	// Headlines: tail-latency and total-reconfiguration-time ratios,
	// naive over batched.
	P99ImprovementX      float64 `json:"p99_improvement_x"`
	ReconfigReductionX   float64 `json:"reconfig_seconds_reduction_x"`
	TenantsPerFlashBatch float64 `json:"tenants_per_flash_window"`
}

// TestBenchReconfigArtifact runs the reconfiguration-storm DES and
// records BENCH_reconfig.json. Gated behind BF_BENCH_RECONFIG so
// `go test ./...` stays fast.
func TestBenchReconfigArtifact(t *testing.T) {
	if os.Getenv("BF_BENCH_RECONFIG") == "" {
		t.Skip("set BF_BENCH_RECONFIG=1 (or run `make bench-reconfig`) to record the artifact")
	}

	naive, err := simcluster.RunReconfigStorm(simcluster.ReconfigConfig{})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := simcluster.RunReconfigStorm(simcluster.ReconfigConfig{Batched: true})
	if err != nil {
		t.Fatal(err)
	}

	report := reconfigReport{
		GeneratedBy:          "make bench-reconfig",
		Naive:                naive,
		Batched:              batched,
		TenantsPerFlashBatch: batched.TenantsPerWindow,
	}
	if batched.P99Ms > 0 {
		report.P99ImprovementX = naive.P99Ms / batched.P99Ms
	}
	if batched.ReconfigSeconds > 0 {
		report.ReconfigReductionX = naive.ReconfigSeconds / batched.ReconfigSeconds
	}

	t.Logf("naive:   p50=%.2fms p99=%.2fms reconfigs=%d (%.0fs)",
		naive.P50Ms, naive.P99Ms, naive.Reconfigs, naive.ReconfigSeconds)
	t.Logf("batched: p50=%.2fms p99=%.2fms reconfigs=%d (%.0fs, %.1f tenants/window)",
		batched.P50Ms, batched.P99Ms, batched.Reconfigs,
		batched.ReconfigSeconds, batched.TenantsPerWindow)
	t.Logf("p99 improvement: %.1fx; reconfig time reduction: %.1fx",
		report.P99ImprovementX, report.ReconfigReductionX)

	// Quality bars — the PR's acceptance criteria: batched beats naive on
	// BOTH the p99 tail and the total reconfiguration seconds, decisively.
	if batched.P99Ms >= naive.P99Ms {
		t.Fatalf("batched p99 %.2fms did not beat naive %.2fms", batched.P99Ms, naive.P99Ms)
	}
	if batched.ReconfigSeconds >= naive.ReconfigSeconds {
		t.Fatalf("batched reconfig time %.0fs did not beat naive %.0fs",
			batched.ReconfigSeconds, naive.ReconfigSeconds)
	}
	if report.P99ImprovementX < 2 {
		t.Fatalf("p99 improvement %.2fx under the 2x bar", report.P99ImprovementX)
	}
	if report.ReconfigReductionX < 2 {
		t.Fatalf("reconfig reduction %.2fx under the 2x bar", report.ReconfigReductionX)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_reconfig.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_reconfig.json")
}
