// Cnninference: PipeCNN-style CNN inference over a shared board, with the
// board reconfiguration path on display.
//
// The board starts configured with the Sobel bitstream; deploying the CNN
// function makes the Device Manager reprogram it (the blocking
// context/information method of the paper), after which two tenants run
// inferences concurrently. The example uses the reduced TinyCNN network so
// the real software convolutions stay fast; the AlexNet-scale numbers come
// from cmd/blastbench -exp table4.
//
// Run with: go run ./examples/cnninference
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"blastfunction"
	"blastfunction/internal/accel"
	"blastfunction/internal/apps"
)

func main() {
	tb, err := blastfunction.NewTestbed(blastfunction.NodeConfig{Name: "B"})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	boardStats := tb.Nodes[0].Board.Stats

	// Pre-configure the board with Sobel, as if a previous tenant left it
	// that way.
	warm, err := tb.Client("previous-tenant")
	if err != nil {
		log.Fatal(err)
	}
	sobelApp, err := apps.NewSobel(warm, 0, 64, 64)
	if err != nil {
		log.Fatal(err)
	}
	img := apps.SyntheticImage(64, 64)
	if _, err := sobelApp.Process(img, 64, 64); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("board initially configured with %q (%d reconfiguration)\n",
		tb.Nodes[0].Board.ConfiguredID(), boardStats().Reconfigs)
	sobelApp.Close()
	warm.Close()

	// The CNN tenants arrive: the first Build triggers the blocking
	// reconfiguration; the second reuses the configuration.
	spec := accel.TinyCNN()
	fmt.Printf("\ndeploying %q inference (%d layers, %d kernel launches/inference)\n",
		spec.Name, len(spec.Layers), spec.KernelLaunches())

	var wg sync.WaitGroup
	for tenant := 1; tenant <= 2; tenant++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			name := fmt.Sprintf("cnn-tenant-%d", tenant)
			client, err := tb.Client(name)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			defer client.Close()
			app, err := apps.NewCNN(client, 0, spec)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			defer app.Close()
			input := app.RandomInput(int64(tenant))
			for i := 0; i < 3; i++ {
				start := time.Now()
				out, err := app.Infer(input)
				if err != nil {
					log.Fatalf("%s: inference %d: %v", name, i, err)
				}
				best, bestV := 0, out[0]
				for c, v := range out {
					if v > bestV {
						best, bestV = c, v
					}
				}
				fmt.Printf("%s: inference %d in %8v -> class %d (%.4f)\n",
					name, i, time.Since(start).Round(time.Microsecond), best, bestV)
			}
		}(tenant)
	}
	wg.Wait()

	st := boardStats()
	fmt.Printf("\nafter the CNN tenants:\n")
	fmt.Printf("  configured bitstream : %q\n", tb.Nodes[0].Board.ConfiguredID())
	fmt.Printf("  reconfigurations     : %d total (initial sobel + one sobel->pipecnn swap;\n"+
		"                         the second tenant reused the configuration)\n", st.Reconfigs)
	fmt.Printf("  kernel launches      : %d\n", st.KernelRuns)
	fmt.Printf("  modelled AlexNet cost: %v board time per inference at paper scale\n",
		accel.AlexNet().BoardTime().Round(time.Millisecond))

	// Both tenants uploaded identical model weights; the Device Manager's
	// content-addressed buffer cache deduplicated them, so the second
	// tenant's creates were metadata-only RPCs.
	bc := tb.Nodes[0].Manager.CacheStats().BufferCache
	fmt.Printf("\nweight cache (content-addressed buffer cache):\n")
	fmt.Printf("  resident             : %d entries, %d bytes on the board\n", bc.Entries, bc.ResidentBytes)
	fmt.Printf("  hits / misses        : %d / %d\n", bc.Hits, bc.Misses)
	fmt.Printf("  upload bytes saved   : %d (the second tenant's weights never crossed the wire)\n", bc.BytesSaved)
}
