// Imagepipeline: the full BlastFunction serverless stack, in process.
//
// The example reproduces the structure of the paper's Sobel experiment
// (Table II) live: three nodes with one simulated board each, the
// Accelerators Registry intercepting instance creation and running the
// allocation algorithm, the gateway materializing five Sobel functions
// over Remote OpenCL Library clients, and a hey-style load generator
// driving every function with one closed-loop connection. Placements and
// utilization come from the real components, not the simulator.
//
// Run with: go run ./examples/imagepipeline
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"blastfunction"
	"blastfunction/internal/apps"
	"blastfunction/internal/cluster"
	"blastfunction/internal/gateway"
	"blastfunction/internal/loadgen"
	"blastfunction/internal/registry"
	"blastfunction/internal/remote"
)

// Live-demo image size: small enough that the real software Sobel keeps
// up with the request rates (the paper-scale numbers come from
// cmd/blastbench, which uses the calibrated models instead).
const imgW, imgH = 320, 240

func main() {
	// 1. Three nodes, one board + Device Manager each (A is the slower
	// master node, as in the paper's testbed).
	tb, err := blastfunction.NewTestbed(
		blastfunction.NodeConfig{Name: "A", Master: true},
		blastfunction.NodeConfig{Name: "B"},
		blastfunction.NodeConfig{Name: "C"},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	// 2. Control plane: cluster orchestrator + Accelerators Registry.
	cl := cluster.New()
	// The default policy orders by utilization then connected instances;
	// with no scraper attached the Registry still spreads functions using
	// its own connected-instance counts.
	reg, err := registry.New(registry.DefaultPolicy(nil))
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range tb.Nodes {
		if err := cl.AddNode(cluster.Node{Name: n.Name}); err != nil {
			log.Fatal(err)
		}
		if err := reg.RegisterDevice(registry.Device{
			ID:          "fpga-" + n.Name,
			Node:        n.Name,
			Vendor:      "Intel(R) Corporation",
			Platform:    "Intel(R) FPGA SDK for OpenCL(TM)",
			ManagerAddr: n.Addr,
		}); err != nil {
			log.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctrl := registry.NewController(reg, cl)
	go ctrl.Run(ctx)

	// 3. Serverless gateway with five identical Sobel functions.
	gw := gateway.New(cl)
	go gw.Run(ctx)
	functions := []string{"sobel-1", "sobel-2", "sobel-3", "sobel-4", "sobel-5"}
	for _, name := range functions {
		if err := reg.RegisterFunction(registry.Function{
			Name:      name,
			Query:     registry.DeviceQuery{Vendor: "Intel(R) Corporation", Accelerator: "sobel"},
			Bitstream: "spector-sobel",
		}); err != nil {
			log.Fatal(err)
		}
		if err := gw.Deploy(name, 1, sobelFactory); err != nil {
			log.Fatal(err)
		}
	}
	for _, name := range functions {
		waitReady(gw, name)
	}
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	fmt.Println("placements chosen by the allocation algorithm:")
	printPlacements(cl, functions)

	// 4. hey-style load: one closed-loop connection per function.
	rates := map[string]float64{
		"sobel-1": 20, "sobel-2": 15, "sobel-3": 10, "sobel-4": 5, "sobel-5": 5,
	}
	fmt.Println("\ndriving each function for 3s (one connection each)...")
	var wg sync.WaitGroup
	results := make(map[string]*loadgen.Result, len(functions))
	var mu sync.Mutex
	for _, name := range functions {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			res, err := loadgen.Run(ctx, loadgen.Config{
				URL:         fmt.Sprintf("%s/function/%s?w=%d&h=%d", srv.URL, name, imgW, imgH),
				Connections: 1,
				RatePerSec:  rates[name],
				Duration:    3 * time.Second,
			})
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			mu.Lock()
			results[name] = res
			mu.Unlock()
		}(name)
	}
	wg.Wait()

	// 5. Report: the live equivalent of a Table II block.
	fmt.Printf("\n%-10s %-5s %12s %12s %10s\n", "function", "node", "latency", "processed", "target")
	for _, name := range functions {
		res := results[name]
		node := placementNode(cl, name)
		fmt.Printf("%-10s %-5s %12v %9.2f rq/s %6.0f rq/s\n",
			name, node, res.AvgLatency.Round(time.Microsecond), res.Throughput, rates[name])
	}
	fmt.Println("\nper-board kernel launches (the sharing at work):")
	for _, n := range tb.Nodes {
		st := n.Board.Stats()
		fmt.Printf("  node %s: %4d launches, modelled busy %v\n",
			n.Name, st.KernelRuns, st.BusyTime.Round(time.Millisecond))
	}
}

// sobelFactory materializes one function instance over the Device Manager
// the Registry injected.
func sobelFactory(in cluster.Instance) (gateway.Endpoint, error) {
	addr := in.Env[registry.EnvManagerAddr]
	if addr == "" {
		return nil, fmt.Errorf("instance %s not allocated", in.Name)
	}
	client, err := remote.Dial(remote.Config{
		ClientName: in.Name,
		Managers:   []string{addr},
		Transport:  remote.TransportAuto,
	})
	if err != nil {
		return nil, err
	}
	app, err := apps.NewSobel(client, 0, imgW, imgH)
	if err != nil {
		client.Close()
		return nil, err
	}
	return gateway.HandlerEndpoint{
		Handler:   apps.SobelHandler(app, imgW, imgH),
		CloseFunc: client.Close,
	}, nil
}

func waitReady(gw *gateway.Gateway, name string) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if gw.ReadyReplicas(name) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatalf("function %s never became ready", name)
}

func placementNode(cl *cluster.Cluster, function string) string {
	for _, in := range cl.Instances(function) {
		if in.Phase == cluster.Running {
			return in.Node
		}
	}
	return "?"
}

func printPlacements(cl *cluster.Cluster, functions []string) {
	byNode := map[string][]string{}
	for _, fn := range functions {
		node := placementNode(cl, fn)
		byNode[node] = append(byNode[node], fn)
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		fmt.Printf("  node %s: %v\n", n, byNode[n])
	}
}
