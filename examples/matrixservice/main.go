// Matrixservice: the Spector MM accelerator as a microservice, comparing
// the paper's three execution modes on one node — the live miniature of
// Figure 4c.
//
// The same host code runs three times: on the native runtime (exclusive
// board), through BlastFunction over the RPC data path (the paper's
// "BlastFunction" series) and through BlastFunction over shared memory
// ("BlastFunction shm"). The example verifies all three produce identical
// results and prints the modelled device-time vs wall-time breakdown.
//
// Run with: go run ./examples/matrixservice
package main

import (
	"fmt"
	"log"
	"time"

	"blastfunction"
	"blastfunction/internal/accel"
	"blastfunction/internal/apps"
	"blastfunction/internal/fpga"
	"blastfunction/internal/model"
	"blastfunction/internal/native"
	"blastfunction/internal/ocl"
	"blastfunction/internal/remote"
)

const n = 128 // live matrix size (real software matmul runs per request)

func main() {
	a := apps.RandomMatrix(n, 1)
	b := apps.RandomMatrix(n, 2)

	// Native baseline: direct, exclusive board access.
	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
	nativeApp, err := apps.NewMM(native.New(board), 0, n)
	if err != nil {
		log.Fatal(err)
	}
	nativeOut, nativeWall := timeMultiply(nativeApp, a, b)
	fmt.Printf("%-18s wall %8v   (modelled device time %v)\n",
		"Native:", nativeWall.Round(time.Microsecond),
		accel.MMModel(n).Round(time.Microsecond))

	// BlastFunction: shared board behind a Device Manager.
	tb, err := blastfunction.NewTestbed(blastfunction.NodeConfig{Name: "B"})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	for _, mode := range []struct {
		label     string
		transport remote.TransportMode
	}{
		{"BlastFunction:", remote.TransportGRPC},
		{"BlastFunction shm:", remote.TransportShm},
	} {
		client, err := remote.Dial(remote.Config{
			ClientName: "matrixservice",
			Managers:   []string{tb.Nodes[0].Addr},
			Transport:  mode.transport,
		})
		if err != nil {
			log.Fatal(err)
		}
		app, err := apps.NewMM(client, 0, n)
		if err != nil {
			log.Fatal(err)
		}
		out, wall := timeMultiply(app, a, b)
		fmt.Printf("%-18s wall %8v\n", mode.label, wall.Round(time.Microsecond))
		if !equal(out, nativeOut) {
			log.Fatalf("%s results diverge from native", mode.label)
		}
		app.Close()
		client.Close()
	}
	fmt.Println("\nall three execution modes produced identical matrices —")
	fmt.Println("the transparency property: no host-code change between them.")

	// The paper-scale curve (calibrated models) for context.
	fmt.Println("\nmodelled paper-scale RTTs (Fig. 4c operating points):")
	c := model.WorkerNode()
	for _, size := range []int{16, 256, 1024, 4096} {
		mat := accel.MMMatrixBytes(size)
		nat := 3*c.PCIeTransfer(mat) + accel.MMModel(int64(size))
		grpc := nat + c.TaskControlOverhead(4) + c.GRPCDataOverhead(3*mat)
		shm := nat + c.TaskControlOverhead(4) + c.ShmDataOverhead(3*mat)
		fmt.Printf("  n=%-5d native %10v   grpc %10v   shm %10v\n",
			size, nat.Round(time.Microsecond), grpc.Round(time.Microsecond), shm.Round(time.Microsecond))
	}
}

func timeMultiply(app *apps.MMApp, a, b []float32) ([]float32, time.Duration) {
	start := time.Now()
	out, err := app.Multiply(a, b, n)
	if err != nil {
		log.Fatal(err)
	}
	return out, time.Since(start)
}

func equal(x, y []float32) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

var _ ocl.Client = (*native.Client)(nil) // interface check kept visible in the example
