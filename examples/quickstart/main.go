// Quickstart: two tenants transparently share one (simulated) FPGA board
// through BlastFunction.
//
// The example starts an in-process testbed (board + Device Manager + RPC
// server), connects two Remote OpenCL Library clients, and runs concurrent
// Sobel requests from both. The host code is plain OpenCL-style; neither
// tenant knows the board is shared. At the end the Device Manager's
// metrics show both tenants' work multiplexed onto the same device.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"blastfunction"
	"blastfunction/internal/apps"
)

func main() {
	tb, err := blastfunction.NewTestbed(blastfunction.NodeConfig{Name: "B"})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	fmt.Printf("testbed up: Device Manager for %s at %s\n\n",
		tb.Nodes[0].Board.Config().Name, tb.Nodes[0].Addr)

	const tenants = 2
	const requestsPerTenant = 8
	var wg sync.WaitGroup
	for tenant := 1; tenant <= tenants; tenant++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant-%d", tenant)
			client, err := tb.Client(name)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			defer client.Close()

			// Plain OpenCL-style host code: build the Sobel app on "the"
			// device — transparently a shared one.
			app, err := apps.NewSobel(client, 0, 320, 240)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			defer app.Close()

			img := apps.SyntheticImage(320, 240)
			for i := 0; i < requestsPerTenant; i++ {
				start := time.Now()
				out, err := app.Process(img, 320, 240)
				if err != nil {
					log.Fatalf("%s: request %d: %v", name, i, err)
				}
				nonZero := 0
				for _, b := range out {
					if b != 0 {
						nonZero++
					}
				}
				fmt.Printf("%s: request %d done in %v (%d edge bytes)\n",
					name, i, time.Since(start).Round(time.Microsecond), nonZero)
			}
		}(tenant)
	}
	wg.Wait()

	stats := tb.Nodes[0].Board.Stats()
	fmt.Printf("\nshared board after %d requests from %d tenants:\n",
		tenants*requestsPerTenant, tenants)
	fmt.Printf("  kernel launches : %d\n", stats.KernelRuns)
	fmt.Printf("  bytes in / out  : %d / %d\n", stats.BytesIn, stats.BytesOut)
	fmt.Printf("  modelled busy   : %v\n", stats.BusyTime.Round(time.Microsecond))
	fmt.Printf("  reconfigurations: %d (second tenant reused the bitstream)\n", stats.Reconfigs)
}
