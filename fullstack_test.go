package blastfunction

// Full-stack integration test: testbed boards + Device Managers over TCP,
// metrics exported and scraped, the cluster orchestrator, the Accelerators
// Registry with its controller, the serverless gateway, HTTP load, and a
// live reconfiguration with instance migration. This is the paper's whole
// Figure 1 running in one test.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/apps"
	"blastfunction/internal/cluster"
	"blastfunction/internal/gateway"
	"blastfunction/internal/loadgen"
	"blastfunction/internal/logx"
	"blastfunction/internal/metrics"
	"blastfunction/internal/registry"
	"blastfunction/internal/remote"
)

// stack wires every component of the system over a testbed.
type stack struct {
	tb      *Testbed
	cl      *cluster.Cluster
	reg     *registry.Registry
	gw      *gateway.Gateway
	gwSrv   *httptest.Server
	scraper *metrics.Scraper
	db      *metrics.TSDB
	cancel  context.CancelFunc
}

func newStack(t *testing.T) *stack {
	t.Helper()
	tb, err := NewTestbed(
		NodeConfig{Name: "A", Master: true},
		NodeConfig{Name: "B"},
		NodeConfig{Name: "C"},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tb.Close() })

	db := metrics.NewTSDB(time.Minute)
	scraper := metrics.NewScraper(db, 50*time.Millisecond)
	gatherer := registry.NewGatherer(db)
	gatherer.Window = 2 * time.Second
	reg, err := registry.New(registry.DefaultPolicy(gatherer))
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New()

	for _, n := range tb.Nodes {
		metricsSrv := httptest.NewServer(n.Manager.MetricsHandler())
		t.Cleanup(metricsSrv.Close)
		if err := cl.AddNode(cluster.Node{Name: n.Name}); err != nil {
			t.Fatal(err)
		}
		if err := reg.RegisterDevice(registry.Device{
			ID:          "fpga-" + n.Name,
			Node:        n.Name,
			Vendor:      "Intel(R) Corporation",
			Platform:    "Intel(R) FPGA SDK for OpenCL(TM)",
			ManagerAddr: n.Addr,
			MetricsURL:  metricsSrv.URL,
		}); err != nil {
			t.Fatal(err)
		}
		scraper.AddTarget("fpga-"+n.Name, metricsSrv.URL)
	}

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go scraper.Run(ctx)
	ctrl := registry.NewController(reg, cl)
	ctrl.Log = logx.NewLogf("registry", t.Logf)
	go ctrl.Run(ctx)
	gw := gateway.New(cl)
	gw.Log = logx.NewLogf("gateway", t.Logf)
	go gw.Run(ctx)
	gwSrv := httptest.NewServer(gw.Handler())
	t.Cleanup(gwSrv.Close)

	return &stack{tb: tb, cl: cl, reg: reg, gw: gw, gwSrv: gwSrv, scraper: scraper, db: db, cancel: cancel}
}

// sobelFactory builds a small-image Sobel endpoint over the allocated
// manager.
func sobelFactory(in cluster.Instance) (gateway.Endpoint, error) {
	addr := in.Env[registry.EnvManagerAddr]
	if addr == "" {
		return nil, fmt.Errorf("instance %s not allocated", in.Name)
	}
	client, err := remote.Dial(remote.Config{
		ClientName: in.Name, Managers: []string{addr}, Transport: remote.TransportAuto,
	})
	if err != nil {
		return nil, err
	}
	app, err := apps.NewSobel(client, 0, 64, 64)
	if err != nil {
		client.Close()
		return nil, err
	}
	return gateway.HandlerEndpoint{Handler: apps.SobelHandler(app, 64, 64), CloseFunc: client.Close}, nil
}

func mmFactory(in cluster.Instance) (gateway.Endpoint, error) {
	addr := in.Env[registry.EnvManagerAddr]
	if addr == "" {
		return nil, fmt.Errorf("instance %s not allocated", in.Name)
	}
	client, err := remote.Dial(remote.Config{
		ClientName: in.Name, Managers: []string{addr}, Transport: remote.TransportAuto,
	})
	if err != nil {
		return nil, err
	}
	app, err := apps.NewMM(client, 0, 64)
	if err != nil {
		client.Close()
		return nil, err
	}
	return gateway.HandlerEndpoint{Handler: apps.MMHandler(app, 32), CloseFunc: client.Close}, nil
}

func (s *stack) deploySobel(t *testing.T, name string) {
	t.Helper()
	if err := s.reg.RegisterFunction(registry.Function{
		Name:      name,
		Query:     registry.DeviceQuery{Vendor: "Intel(R) Corporation", Accelerator: "sobel"},
		Bitstream: accel.SobelBitstreamID,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.gw.Deploy(name, 1, sobelFactory); err != nil {
		t.Fatal(err)
	}
	s.waitReady(t, name)
}

func (s *stack) waitReady(t *testing.T, name string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.gw.ReadyReplicas(name) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("function %s never became ready", name)
}

func (s *stack) invoke(t *testing.T, path string) apps.Reply {
	t.Helper()
	resp, err := s.gwSrv.Client().Get(s.gwSrv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep apps.Reply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFullStackServesAcceleratedFunctions(t *testing.T) {
	s := newStack(t)
	for i := 1; i <= 3; i++ {
		s.deploySobel(t, fmt.Sprintf("sobel-%d", i))
	}
	// Functions spread across distinct nodes (Algorithm 1 with the
	// registry's own connected counts).
	nodes := map[string]bool{}
	for i := 1; i <= 3; i++ {
		ins := s.cl.Instances(fmt.Sprintf("sobel-%d", i))
		if len(ins) != 1 {
			t.Fatalf("sobel-%d instances = %d", i, len(ins))
		}
		nodes[ins[0].Node] = true
	}
	if len(nodes) != 3 {
		t.Fatalf("functions on %d nodes, want 3: %v", len(nodes), nodes)
	}

	// Drive one function with the load generator through the gateway.
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		URL:         s.gwSrv.URL + "/function/sobel-1?w=32&h=32",
		Connections: 1,
		RatePerSec:  50,
		Duration:    400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.Errors > 0 {
		t.Fatalf("load result: %+v", res)
	}

	// The scraped metrics reach the gatherer: at least one device shows
	// busy counters after the load.
	s.scraper.ScrapeOnce()
	var sawBusy bool
	for _, n := range s.tb.Nodes {
		lbl := metrics.Labels{"device": "fpga-" + n.Name, "node": n.Name}
		if v, ok := s.db.Latest("bf_device_busy_seconds_total", lbl); ok && v > 0 {
			sawBusy = true
		}
	}
	if !sawBusy {
		t.Fatal("no busy metrics reached the TSDB")
	}
}

func TestFullStackReconfigurationMigratesInstances(t *testing.T) {
	s := newStack(t)
	for i := 1; i <= 3; i++ {
		s.deploySobel(t, fmt.Sprintf("sobel-%d", i))
	}
	// Exercise each function once so the boards are really configured.
	for i := 1; i <= 3; i++ {
		if rep := s.invoke(t, fmt.Sprintf("/function/sobel-%d?w=16&h=16", i)); rep.Error != "" {
			t.Fatalf("sobel-%d: %s", i, rep.Error)
		}
	}

	// An MM function arrives: every board serves sobel, so Algorithm 1
	// must displace one board's sobel instance (migrating it to another
	// sobel board via create-before-delete) and hand the board to MM.
	if err := s.reg.RegisterFunction(registry.Function{
		Name:      "mm-1",
		Query:     registry.DeviceQuery{Vendor: "Intel(R) Corporation", Accelerator: "mm"},
		Bitstream: accel.MMBitstreamID,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.gw.Deploy("mm-1", 1, mmFactory); err != nil {
		t.Fatal(err)
	}
	s.waitReady(t, "mm-1")

	// MM serves requests (its Build reconfigured the board through the
	// Registry-gated path).
	if rep := s.invoke(t, "/function/mm-1?n=16"); rep.Error != "" {
		t.Fatalf("mm-1: %s", rep.Error)
	}

	// Every sobel function still has exactly one Running instance and
	// still serves; the migrated one landed on a different board.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ready := 0
		for i := 1; i <= 3; i++ {
			ready += s.gw.ReadyReplicas(fmt.Sprintf("sobel-%d", i))
		}
		if ready == 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mmIns := s.cl.Instances("mm-1")
	if len(mmIns) != 1 {
		t.Fatalf("mm instances = %d", len(mmIns))
	}
	mmNode := mmIns[0].Node
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("sobel-%d", i)
		ins := s.cl.Instances(name)
		if len(ins) != 1 {
			t.Fatalf("%s has %d instances after migration", name, len(ins))
		}
		if ins[0].Node == mmNode {
			t.Fatalf("%s still shares node %s with mm-1 after migration", name, mmNode)
		}
		if rep := s.invoke(t, fmt.Sprintf("/function/%s?w=16&h=16", name)); rep.Error != "" {
			t.Fatalf("%s after migration: %s", name, rep.Error)
		}
	}

	// The converted board really runs the MM bitstream now.
	for _, n := range s.tb.Nodes {
		if n.Name == mmNode {
			if got := n.Board.ConfiguredID(); got != accel.MMBitstreamID {
				t.Fatalf("board %s configured with %q", n.Name, got)
			}
		}
	}
}
